"""Tests for the explicit-state model checker (§4.5)."""

import pytest

from repro.config import CordConfig
from repro.litmus import (
    LitmusTest,
    ModelChecker,
    ld,
    poll_acq,
    st,
    st_rel,
    st_so,
)

ISA2 = LitmusTest(
    name="ISA2",
    locations={"X": 2, "Y": 1, "Z": 2},
    programs=[
        [st("X", 1), st_rel("Y", 1)],
        [poll_acq("Y", 1, "r1"), st_rel("Z", 1)],
        [poll_acq("Z", 1, "r2"), ld("X", "r3")],
    ],
    forbidden=[{"P2:r2": 1, "P2:r3": 0}],
)

MP = LitmusTest(
    name="MP",
    locations={"X": 2, "Y": 1},
    programs=[
        [st("X", 1), st_rel("Y", 1)],
        [poll_acq("Y", 1, "r1"), ld("X", "r2")],
    ],
    forbidden=[{"P1:r1": 1, "P1:r2": 0}],
)


class TestCordSafety:
    def test_cord_forbids_isa2_outcome(self):
        result = ModelChecker(ISA2, protocol="cord").run()
        assert result.passed
        assert result.forbidden_reached == []
        assert result.deadlocks == 0

    def test_cord_forbids_mp_pattern_outcome(self):
        result = ModelChecker(MP, protocol="cord").run()
        assert result.passed
        # The only outcome: the load sees the fresh value.
        assert all(o["P1:r2"] == 1 for o in result.outcomes)

    def test_all_histories_pass_axiomatic_rc(self):
        result = ModelChecker(ISA2, protocol="cord").run()
        assert result.rc_violations == []


class TestSoSafety:
    def test_so_forbids_isa2_outcome(self):
        result = ModelChecker(ISA2, protocol="so").run()
        assert result.passed


class TestMpViolation:
    def test_mp_reaches_forbidden_isa2_outcome(self):
        """The paper's Fig. 3: point-to-point ordering lacks cumulativity."""
        result = ModelChecker(ISA2, protocol="mp").run()
        assert not result.passed
        assert result.forbidden_reached
        # The axiomatic checker independently flags the same execution.
        assert result.rc_violations

    def test_mp_is_safe_for_two_party_sync(self):
        """Point-to-point ordering is exactly what MP *can* provide: when
        data and flag share a destination, per-pair FIFO preserves RC."""
        from dataclasses import replace
        same_dest = replace(MP, locations={"X": 1, "Y": 1})
        result = ModelChecker(same_dest, protocol="mp").run()
        assert result.passed

    def test_mp_violates_even_mp_pattern_across_destinations(self):
        """With data and flag on different hosts, MP's point-to-point
        ordering cannot even preserve the two-thread MP pattern."""
        result = ModelChecker(MP, protocol="mp").run()
        assert not result.passed
        assert result.forbidden_reached


class TestMixedProtocols:
    def test_mixed_cord_so_cores_safe(self):
        from dataclasses import replace
        mixed = replace(ISA2, thread_protocols=["cord", "so", "cord"])
        result = ModelChecker(mixed, protocol="cord").run()
        assert result.passed

    def test_mixed_op_types_single_core(self):
        test = LitmusTest(
            name="mixed-ops",
            locations={"X": 1, "Y": 1, "Z": 2},
            programs=[
                [st("X", 1), st_so("Z", 1), st_rel("Y", 1)],
                [poll_acq("Y", 1, "r1"), ld("X", "r2"), ld("Z", "r3")],
            ],
            forbidden=[{"P1:r2": 0}, {"P1:r3": 0}],
        )
        result = ModelChecker(test, protocol="cord").run()
        assert result.passed


class TestBoundedResources:
    def test_tiny_tables_safe_and_deadlock_free(self):
        tiny = CordConfig(
            epoch_bits=2, counter_bits=2,
            proc_store_counter_entries=1, proc_unacked_epoch_entries=1,
            dir_store_counter_entries_per_proc=3,
            dir_notification_entries_per_proc=3,
        )
        result = ModelChecker(ISA2, protocol="cord", cord_config=tiny).run()
        assert result.passed

    def test_max_states_guard(self):
        from repro.litmus import ModelCheckError
        with pytest.raises(ModelCheckError):
            ModelChecker(ISA2, protocol="cord", max_states=3).run()

    def test_max_states_error_carries_partial_results(self):
        from repro.litmus import ModelCheckError
        with pytest.raises(ModelCheckError) as exc_info:
            ModelChecker(ISA2, protocol="cord", max_states=3).run()
        error = exc_info.value
        assert error.states_explored == 3
        assert error.deadlocks == 0
        assert isinstance(error.finals, list)
        assert error.partial_result is not None
        assert not error.partial_result.complete

    def test_partial_mode_returns_incomplete_result(self):
        partial = ModelChecker(ISA2, protocol="cord", max_states=3,
                               partial=True).run()
        assert not partial.complete
        assert partial.states_explored == 3
        full = ModelChecker(ISA2, protocol="cord").run()
        assert full.complete
        assert full.states_explored > partial.states_explored


class TestDeadlockWitness:
    STUCK = LitmusTest(
        name="stuck",
        locations={"X": 1, "Y": 1},
        programs=[
            [st("X", 1), poll_acq("Y", 1, "r1")],  # Y is never written
        ],
    )

    def test_witness_captures_first_deadlock(self):
        result = ModelChecker(self.STUCK, protocol="cord").run()
        assert result.deadlocks > 0
        assert not result.passed
        witness = result.first_deadlock
        assert witness is not None
        core = witness.cores[0]
        assert core["pc"] == 1 and core["ops"] == 2
        assert not core["done"]
        assert core["next_op"]  # the stuck op is rendered
        assert witness.messages == []  # network fully drained

    def test_witness_renders_and_round_trips(self):
        from repro.litmus.model_checker import DeadlockWitness
        result = ModelChecker(self.STUCK, protocol="cord").run()
        witness = result.first_deadlock
        text = str(witness)
        assert "deadlock witness" in text
        assert "P0" in text and "pc=1/2" in text
        assert DeadlockWitness.from_dict(witness.to_dict()) == witness

    def test_no_witness_when_deadlock_free(self):
        result = ModelChecker(ISA2, protocol="cord").run()
        assert result.deadlocks == 0
        assert result.first_deadlock is None


class TestTsoMode:
    def test_tso_forbids_store_store_reorder(self):
        test = LitmusTest(
            name="tso-mp",
            locations={"X": 2, "Y": 1},
            programs=[
                [st("X", 1), st("Y", 1)],   # both relaxed
                [poll_acq("Y", 1, "r1"), ld("X", "r2")],
            ],
            forbidden=[{"P1:r1": 1, "P1:r2": 0}],
        )
        rc_result = ModelChecker(test, protocol="cord", tso=False).run()
        tso_result = ModelChecker(test, protocol="cord", tso=True).run()
        # Allowed under RC...
        assert rc_result.reaches({"P1:r2": 0})
        # ...forbidden under TSO.
        assert not tso_result.reaches({"P1:r2": 0})
        assert tso_result.passed


class TestWeakOutcomesReachable:
    def test_relaxed_mp_weak_outcome_reachable(self):
        """Sanity: without release/acquire the checker must find the weak
        outcome (it is not over-synchronizing)."""
        test = LitmusTest(
            name="mp-rlx",
            locations={"X": 2, "Y": 1},
            programs=[
                [st("X", 1), st("Y", 1)],
                [poll_acq("Y", 1, "r1"), ld("X", "r2")],
            ],
        )
        result = ModelChecker(test, protocol="cord").run()
        assert result.reaches({"P1:r1": 1, "P1:r2": 0})
        assert result.reaches({"P1:r1": 1, "P1:r2": 1})
