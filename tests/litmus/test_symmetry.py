"""Symmetry reduction: automorphism discovery and soundness differential.

The canonicalization layer is only allowed to *shrink the explored graph*,
never to change what the checker concludes: the differential here re-runs
suites with and without symmetry and asserts identical verdicts, identical
final-outcome sets (exactly equal — finals are orbit-expanded, not just
equal up to permutation) and identical deadlock freedom.
"""

import pytest

from repro.litmus.dsl import LitmusTest, faa, ld, ld_acq, st, st_rel
from repro.litmus.model_checker import ModelChecker
from repro.litmus.suite import CaseSpec, classic_tests, full_suite
from repro.harness.modelcheck import suite_cases


def _checker(case, symmetry=True, **kw):
    return ModelChecker(
        case.test, protocol=case.protocol, cord_config=case.cord_config,
        tso=case.tso, partial=True, symmetry=symmetry, **kw,
    )


def _case_named(name, protocol="cord"):
    return next(c for c in full_suite()
                if c.test.name == name and c.protocol == protocol)


class TestDiscovery:
    def test_sb_has_the_thread_swap(self):
        # SB's threads run mirrored programs on swapped locations: the
        # (swap threads, swap locations) automorphism must be found.
        checker = _checker(_case_named("SB.same"))
        assert len(checker._autos) >= 1
        assert any(auto.cores == (1, 0) for auto in checker._autos)

    def test_mp_is_asymmetric(self):
        # MP's producer and consumer run different programs.
        assert _checker(_case_named("MP.same"))._autos == []

    def test_isa2_is_asymmetric(self):
        assert _checker(_case_named("ISA2.same"))._autos == []

    def test_iriw_readers_swap(self):
        checker = _checker(_case_named("IRIW.same"))
        assert len(checker._autos) >= 1

    def test_atomics_force_value_identity(self):
        test = LitmusTest(
            name="faa2", locations={"A": 0},
            programs=[[faa("A", 1, "r0")], [faa("A", 1, "r1")]],
        )
        checker = ModelChecker(test, protocol="cord", partial=True)
        assert checker._autos  # the thread swap survives...
        for auto in checker._autos:
            assert auto.is_value_identity  # ...but may not remap values

    def test_mismatched_values_break_symmetry(self):
        # Threads store *different* values to swapped locations in a way
        # no bijection fixing 0 can reconcile with the mirrored reads.
        test = LitmusTest(
            name="asym-values", locations={"A": 0, "B": 0},
            programs=[
                [st("A", 1), ld("B", "r0")],
                [st("B", 2), ld("A", "r1"), ld("B", "r2")],
            ],
        )
        checker = ModelChecker(test, protocol="cord", partial=True)
        assert checker._autos == []

    def test_disabled_symmetry_has_no_autos(self):
        checker = _checker(_case_named("SB.same"), symmetry=False)
        assert checker._autos == []


def _run_pair(case):
    base = _checker(case, symmetry=False).run()
    reduced = _checker(case, symmetry=True).run()
    return base, reduced


def _outcome_set(result):
    return {tuple(sorted(f.outcome.items())) for f in result.finals}


def _verdict(result):
    return (
        result.passed,
        result.complete,
        bool(result.forbidden_reached),
        bool(result.rc_violations),
        result.deadlocks == 0,
    )


class TestSoundnessDifferential:
    @pytest.mark.parametrize("case", suite_cases("quick"),
                             ids=lambda c: c.test.name + "@" + c.protocol)
    def test_quick_suite_equivalent(self, case):
        base, reduced = _run_pair(case)
        assert _verdict(base) == _verdict(reduced)
        assert _outcome_set(base) == _outcome_set(reduced)
        assert reduced.states_explored <= base.states_explored

    @pytest.mark.slow
    def test_classic_suite_equivalent(self):
        nontrivial = 0
        for test in classic_tests():
            for protocol in ("cord", "so"):
                case = CaseSpec(test=test, protocol=protocol)
                reduced_checker = _checker(case, symmetry=True)
                if reduced_checker._autos:
                    nontrivial += 1
                base = _checker(case, symmetry=False).run()
                reduced = reduced_checker.run()
                assert _verdict(base) == _verdict(reduced), test.name
                assert _outcome_set(base) == _outcome_set(reduced), test.name
        # The symmetric shapes (SB/LB/2+2W/IRIW/CoRR/CoWW...) must
        # actually exercise the reduction, not silently all be trivial.
        assert nontrivial >= 10

    def test_reduction_shrinks_symmetric_state_space(self):
        case = _case_named("2+2W.spread")
        base, reduced = _run_pair(case)
        assert reduced.states_explored < base.states_explored
        assert reduced.stats["symmetry_canon"] > 0
        assert reduced.stats["automorphisms"] >= 1
