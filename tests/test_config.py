"""Tests for system configuration (Table 1 parameters)."""

import pytest

from repro.config import (
    CXL,
    UPI,
    CacheConfig,
    CordConfig,
    MessageSizeConfig,
    SystemConfig,
)


class TestCacheConfig:
    def test_sets_derived_from_geometry(self):
        cache = CacheConfig(64 * 1024, 2, 2)
        assert cache.sets == 64 * 1024 // (2 * 64)

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 1)


class TestInterconnectPresets:
    def test_table1_latencies(self):
        assert CXL.inter_host_latency_ns == 150.0
        assert UPI.inter_host_latency_ns == 50.0

    def test_serialization_matches_bandwidth(self):
        # 64 GB/s == 64 B/ns.
        assert CXL.serialization_ns(64) == pytest.approx(1.0)
        assert CXL.serialization_ns(4096) == pytest.approx(64.0)


class TestSystemConfig:
    def test_table1_defaults(self):
        config = SystemConfig()
        assert config.hosts == 8
        assert config.cores_per_host == 8
        assert config.total_cores == 64
        assert config.total_directories == 64
        assert config.llc_slice.size_bytes == 2 * 1024 * 1024

    def test_host_of_core(self):
        config = SystemConfig()
        assert config.host_of_core(0) == 0
        assert config.host_of_core(8) == 1
        assert config.host_of_core(63) == 7

    def test_cycles_to_ns(self):
        config = SystemConfig()  # 2 GHz
        assert config.cycles_to_ns(2) == pytest.approx(1.0)

    def test_scaled_reduces_geometry(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        assert config.total_cores == 2
        assert config.total_directories == 2

    def test_with_interconnect(self):
        config = SystemConfig().with_interconnect(UPI)
        assert config.interconnect.name == "UPI"
        assert config.hosts == 8  # unchanged

    def test_mesh_must_fit_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(cores_per_host=10, mesh_dims=(2, 4))

    def test_scaled_mesh_is_near_square(self):
        """Regression: ``scaled()`` used to force a 1xN row mesh, making
        edge walks — and every inter-host message's on-mesh latency — grow
        linearly with core count instead of with sqrt(cores)."""
        dims = {c: SystemConfig().scaled(2, c).mesh_dims
                for c in (1, 2, 4, 8, 12, 16)}
        assert dims == {1: (1, 1), 2: (1, 2), 4: (2, 2), 8: (2, 4),
                        12: (3, 4), 16: (4, 4)}

    def test_scaled_mesh_of_prime_core_count_stays_a_row(self):
        assert SystemConfig().scaled(2, 7).mesh_dims == (1, 7)

    def test_scaled_mesh_always_fits_cores(self):
        for cores in range(1, 20):
            config = SystemConfig().scaled(2, cores)
            rows, cols = config.mesh_dims
            assert rows * cols == cores


class TestCordConfig:
    def test_moduli(self):
        cord = CordConfig(epoch_bits=8, counter_bits=32)
        assert cord.epoch_modulus == 256
        assert cord.counter_modulus == 2**32

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            CordConfig(epoch_bits=0)

    def test_table3_default_provisioning(self):
        cord = CordConfig()
        assert cord.proc_store_counter_entries == 8
        assert cord.proc_unacked_epoch_entries == 8
        assert cord.dir_store_counter_entries_per_proc == 8
        assert cord.dir_notification_entries_per_proc == 16


class TestMessageSizes:
    def test_epoch_fits_reserved_bits_for_free(self):
        sizes = MessageSizeConfig()
        # 8-bit epochs ride in reserved header bits (§4.1).
        assert sizes.metadata_overhead_bytes(8) == 0

    def test_release_metadata_overhead(self):
        sizes = MessageSizeConfig()
        # epoch(8) + counter(32) + lastPrevEp(8) + notiCnt(8) = 56 bits;
        # 8 ride free, 48 remain -> 6 bytes.
        assert sizes.metadata_overhead_bytes(56) == 6

    def test_data_bytes_includes_header_and_payload(self):
        sizes = MessageSizeConfig()
        assert sizes.data_bytes(64) == 16 + 64
        assert sizes.data_bytes(64, metadata_bits=16) == 16 + 64 + 1

    def test_control_bytes(self):
        sizes = MessageSizeConfig()
        assert sizes.control_bytes() == 16
        assert sizes.control_bytes(40) == 16 + 4
