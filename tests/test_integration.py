"""Cross-module integration tests: the paper's headline claims in miniature."""

import pytest

from repro import Machine, SystemConfig, check_rc
from repro.workloads import app, build_workload_programs


@pytest.fixture(scope="module")
def results():
    """Run one communication-heavy app (CR) under all four protocols once."""
    config = SystemConfig().scaled(hosts=4, cores_per_host=2)
    spec = app("CR").scaled(iterations=4)
    out = {}
    for protocol in ("mp", "cord", "so", "wb"):
        machine = Machine(config, protocol=protocol)
        out[protocol] = machine.run(build_workload_programs(spec, config))
    return out


class TestHeadlineClaims:
    def test_cord_faster_than_so(self, results):
        assert results["cord"].time_ns < results["so"].time_ns

    def test_cord_within_striking_distance_of_mp(self, results):
        assert results["cord"].time_ns <= results["mp"].time_ns * 1.15

    def test_cord_less_traffic_than_so(self, results):
        assert results["cord"].inter_host_bytes < results["so"].inter_host_bytes

    def test_wb_slowest_for_streaming_workload(self, results):
        assert results["wb"].time_ns > results["cord"].time_ns

    def test_so_control_traffic_dominated_by_acks(self, results):
        so = results["so"]
        ack_bytes = so.stats.value("bytes.inter_host.wt_ack")
        assert ack_bytes > 0.5 * so.inter_host_control_bytes

    def test_cord_has_no_relaxed_store_acks(self, results):
        cord = results["cord"]
        assert cord.message_count("wt_ack") == 0
        assert cord.message_count("wt_rlx") > 0


class TestValueCorrectness:
    @pytest.mark.parametrize("protocol", ["mp", "cord", "so", "wb"])
    def test_consumers_observe_final_values(self, results, protocol):
        history = results[protocol].history
        # Every consumer finished its polls: all registers populated.
        assert history.registers
        assert all(v is not None for v in history.registers.values())

    @pytest.mark.parametrize("protocol", ["cord", "so"])
    def test_histories_satisfy_release_consistency(self, results, protocol):
        violations = check_rc(results[protocol].history)
        assert violations == []


class TestTsoMode:
    def test_cord_advantage_grows_under_tso(self):
        """§6: TSO orders every store, amplifying CORD's benefit over SO."""
        config = SystemConfig().scaled(hosts=4, cores_per_host=2)
        spec = app("CR").scaled(iterations=3)

        def ratio(consistency):
            times = {}
            for protocol in ("cord", "so"):
                machine = Machine(config, protocol=protocol,
                                  consistency=consistency)
                times[protocol] = machine.run(
                    build_workload_programs(spec, config)
                ).time_ns
            return times["so"] / times["cord"]

        assert ratio("tso") > ratio("rc")

    def test_cord_traffic_inflates_under_tso(self):
        """§6: per-store ordering metadata + acks + notifications make CORD
        traffic-heavier under TSO than under RC."""
        config = SystemConfig().scaled(hosts=4, cores_per_host=2)
        spec = app("CR").scaled(iterations=3)

        def traffic(consistency):
            machine = Machine(config, protocol="cord",
                              consistency=consistency)
            return machine.run(
                build_workload_programs(spec, config)
            ).inter_host_bytes

        assert traffic("tso") > traffic("rc")


class TestInterconnectSensitivity:
    def test_cord_benefit_larger_on_cxl_than_upi(self):
        """Higher interconnect latency means more to save (§5.2)."""
        from repro.config import CXL, UPI
        spec = app("CR").scaled(iterations=3)

        def ratio(interconnect):
            config = SystemConfig().scaled(4, 2).with_interconnect(interconnect)
            times = {}
            for protocol in ("cord", "so"):
                machine = Machine(config, protocol=protocol)
                times[protocol] = machine.run(
                    build_workload_programs(spec, config)
                ).time_ns
            return times["so"] / times["cord"]

        assert ratio(CXL) > ratio(UPI)
