"""Documentation-grade tests walking through the paper's Fig. 4 examples.

Each test drives the pure state machines through the exact numbered steps
of the figure: relaxed-release ordering at one directory (left panel),
release-release ordering (middle panel), and multi-directory ordering via
inter-directory notification (right panel).
"""

from repro.config import CordConfig
from repro.core import CordDirectoryState, CordProcessorState


def make_pair(dirs=2):
    config = CordConfig()
    proc = CordProcessorState(0, config)
    directories = [CordDirectoryState(d, 1, config) for d in range(dirs)]
    return proc, directories


class TestFig4Left:
    """Relaxed-Release ordering at a single directory."""

    def test_numbered_steps(self):
        proc, (directory, _) = make_pair()

        # (1) P0 issues X :=rlx 1 — only the epoch travels with it.
        relaxed = proc.on_relaxed_store(0)
        assert relaxed.epoch == 0

        # (2) P0 issues Y :=rel 1 — epoch AND store counter travel.
        issue = proc.on_release_store(0)
        assert issue.release.epoch == 0
        assert issue.release.counter == 1
        # Locally, the epoch advanced and the counter reset.
        assert proc.epoch.value == 1
        assert proc.store_counters.get(0, 0) == 0

        # (3) The Release arrives first: the directory's counter for
        # (P0, epoch 0) is still 0 != 1, so the Release stalls.
        assert "store counter mismatch" in \
            directory.release_block_reason(issue.release)

        # (4) The Relaxed store arrives and commits immediately;
        # Cnt[P0, 0] becomes 1.
        directory.on_relaxed(relaxed)
        assert directory.store_counters.get(0, 0) == 1

        # (5) Now the embedded counter matches: the Release commits.
        assert directory.release_block_reason(issue.release) is None
        directory.commit_release(issue.release)
        assert directory.largest_committed[0] == 0


class TestFig4Middle:
    """Release-Release ordering via lastPrevEp / largestEp."""

    def test_numbered_steps(self):
        proc, (directory, _) = make_pair()

        # (6) X :=rel 1 in epoch 0 — no prior unacked epoch.
        first = proc.on_release_store(0)
        assert first.release.last_prev_epoch is None

        # (7) Y :=rel 1 in epoch 1 — lastPrevEp points at epoch 0.
        second = proc.on_release_store(0)
        assert second.release.epoch == 1
        assert second.release.last_prev_epoch == 0

        # (8) Epoch 1's Release arrives first: largestEp[P0] is unset,
        # epoch 0 not committed -> stall.
        assert "not committed" in directory.release_block_reason(second.release)

        # (9) Epoch 0 commits; largestEp[P0] = 0.
        directory.commit_release(first.release)
        assert directory.largest_committed[0] == 0

        # (10) Now epoch 1 may commit; largestEp[P0] advances to 1.
        assert directory.release_block_reason(second.release) is None
        directory.commit_release(second.release)
        assert directory.largest_committed[0] == 1


class TestFig4Right:
    """Multi-directory ordering via inter-directory notification."""

    def test_numbered_steps(self):
        proc, (dir0, dir1) = make_pair()

        # (11) X :=rlx 1 goes to Dir0 in epoch 0.
        relaxed = proc.on_relaxed_store(0)

        # (12) Y :=rel 1 goes to Dir1 carrying NotiCnt = 1 (Dir0 pends),
        # and (13) a request-for-notification goes to Dir0 naming Dir1.
        issue = proc.on_release_store(1)
        assert issue.release.noti_cnt == 1
        (pending_dir, request), = issue.notifications
        assert pending_dir == 0
        assert request.counter == 1
        assert request.noti_dst == 1

        # The Release cannot commit at Dir1 yet: no notification received.
        assert "waiting notifications" in dir1.release_block_reason(issue.release)

        # (14) The Relaxed store commits at Dir0...
        dir0.on_relaxed(relaxed)
        # ...which satisfies the request: (15) Dir0 notifies Dir1.
        assert dir0.req_notify_block_reason(request) is None
        notify = dir0.consume_req_notify(request)

        # (16) Dir1 collects the notification; NotiCnt satisfied; commit.
        dir1.on_notify(notify)
        assert dir1.release_block_reason(issue.release) is None
        dir1.commit_release(issue.release)

        # Epoch reclaimed at the processor once acknowledged.
        proc.on_release_ack(1, issue.release.epoch)
        assert proc.total_unacked() == 0

    def test_notification_waits_for_pending_relaxed(self):
        """The pending directory must not notify before its Relaxed stores
        arrive — the request embeds the expected count."""
        proc, (dir0, dir1) = make_pair()
        proc.on_relaxed_store(0)
        proc.on_relaxed_store(0)
        issue = proc.on_release_store(1)
        (_, request), = issue.notifications
        assert request.counter == 2
        # Only one of the two Relaxed stores has arrived.
        dir0.on_relaxed(__import__(
            "repro.core.messages", fromlist=["RelaxedMeta"]
        ).RelaxedMeta(proc=0, epoch=0))
        assert dir0.req_notify_block_reason(request) is not None
