"""Tests for the CORD processor-side state machine (Algorithm 1)."""

import pytest

from repro.config import CordConfig
from repro.core import CordProcessorState


def make_proc(**overrides):
    return CordProcessorState(0, CordConfig(**overrides))


class TestRelaxedStores:
    def test_relaxed_embeds_current_epoch(self):
        proc = make_proc()
        meta = proc.on_relaxed_store(3)
        assert meta.proc == 0
        assert meta.epoch == 0

    def test_relaxed_increments_per_directory_counter(self):
        proc = make_proc()
        proc.on_relaxed_store(3)
        proc.on_relaxed_store(3)
        proc.on_relaxed_store(5)
        assert proc.store_counters.get(3) == 2
        assert proc.store_counters.get(5) == 1

    def test_relaxed_never_changes_epoch(self):
        proc = make_proc()
        for _ in range(10):
            proc.on_relaxed_store(1)
        assert proc.epoch.value == 0

    def test_relaxed_stall_on_counter_table_full(self):
        proc = make_proc(proc_store_counter_entries=2)
        proc.on_relaxed_store(0)
        proc.on_relaxed_store(1)
        reason = proc.relaxed_stall_reason(2)
        assert reason is not None
        assert reason.code == "proc-store-counter-full"
        # Existing directories are still fine.
        assert proc.relaxed_stall_reason(1) is None

    def test_relaxed_stall_on_counter_overflow(self):
        proc = make_proc(counter_bits=2)  # modulus 4
        for _ in range(3):
            proc.on_relaxed_store(0)
        reason = proc.relaxed_stall_reason(0)
        assert reason is not None
        assert reason.code == "store-counter-overflow"

    def test_issuing_while_stalled_raises(self):
        proc = make_proc(counter_bits=2)
        for _ in range(3):
            proc.on_relaxed_store(0)
        with pytest.raises(RuntimeError):
            proc.on_relaxed_store(0)


class TestReleaseStores:
    def test_release_embeds_counter_and_advances_epoch(self):
        proc = make_proc()
        proc.on_relaxed_store(3)
        proc.on_relaxed_store(3)
        issue = proc.on_release_store(3)
        assert issue.release.epoch == 0
        assert issue.release.counter == 2
        assert issue.release.last_prev_epoch is None
        assert proc.epoch.value == 1

    def test_release_resets_all_store_counters(self):
        proc = make_proc()
        proc.on_relaxed_store(1)
        proc.on_relaxed_store(2)
        proc.on_release_store(1)
        assert proc.store_counters.get(1, 0) == 0
        assert proc.store_counters.get(2, 0) == 0

    def test_release_tracks_unacked_epoch(self):
        proc = make_proc()
        proc.on_release_store(4)
        assert proc.unacked_epochs_for(4) == [0]
        assert proc.total_unacked() == 1

    def test_last_prev_epoch_chains_same_directory(self):
        proc = make_proc()
        first = proc.on_release_store(4)
        second = proc.on_release_store(4)
        assert first.release.last_prev_epoch is None
        assert second.release.last_prev_epoch == 0

    def test_last_prev_epoch_not_set_after_ack(self):
        proc = make_proc()
        proc.on_release_store(4)
        proc.on_release_ack(4, 0)
        issue = proc.on_release_store(4)
        assert issue.release.last_prev_epoch is None

    def test_ack_for_unknown_epoch_raises(self):
        proc = make_proc()
        with pytest.raises(RuntimeError):
            proc.on_release_ack(4, 0)


class TestPendingDirectories:
    def test_pending_includes_relaxed_and_unacked(self):
        proc = make_proc()
        proc.on_relaxed_store(1)          # relaxed in current epoch
        proc.on_release_store(2)          # unacked release at dir 2
        assert proc.pending_directories() == [2]  # counters reset by release
        proc.on_relaxed_store(3)
        assert proc.pending_directories() == [2, 3]

    def test_pending_excludes_destination(self):
        proc = make_proc()
        proc.on_relaxed_store(1)
        proc.on_relaxed_store(2)
        assert proc.pending_directories(exclude=2) == [1]

    def test_release_notifications_cover_pending_dirs(self):
        proc = make_proc()
        proc.on_relaxed_store(1)
        proc.on_relaxed_store(1)
        proc.on_relaxed_store(2)
        issue = proc.on_release_store(5)
        assert issue.release.noti_cnt == 2
        assert issue.pending_directory_count == 2
        targets = {d for d, _ in issue.notifications}
        assert targets == {1, 2}
        by_dir = dict(issue.notifications)
        assert by_dir[1].counter == 2
        assert by_dir[2].counter == 1
        assert all(m.noti_dst == 5 for _, m in issue.notifications)

    def test_destination_relaxed_not_notified(self):
        proc = make_proc()
        proc.on_relaxed_store(5)
        issue = proc.on_release_store(5)
        assert issue.release.counter == 1
        assert issue.release.noti_cnt == 0


class TestStallConditions:
    def test_unacked_table_full_stalls_release(self):
        proc = make_proc(proc_unacked_epoch_entries=2)
        proc.on_release_store(0)
        proc.on_release_store(0)
        reason = proc.release_stall_reason(0)
        assert reason is not None
        assert reason.code == "unacked-table-full"

    def test_ack_clears_unacked_stall(self):
        proc = make_proc(proc_unacked_epoch_entries=2)
        proc.on_release_store(0)
        proc.on_release_store(0)
        proc.on_release_ack(0, 0)
        assert proc.release_stall_reason(0) is None

    def test_epoch_alias_stalls_release(self):
        proc = make_proc(epoch_bits=2, proc_unacked_epoch_entries=8,
                         dir_store_counter_entries_per_proc=16,
                         dir_notification_entries_per_proc=16)
        for _ in range(3):
            proc.on_release_store(0)
        reason = proc.release_stall_reason(0)
        assert reason is not None
        assert reason.code == "epoch-wrap"

    def test_dir_partition_bound_stalls_release(self):
        proc = make_proc(dir_store_counter_entries_per_proc=3)
        proc.on_release_store(0)
        proc.on_release_store(0)
        reason = proc.release_stall_reason(0)
        assert reason is not None
        assert reason.code == "dir-store-counter-full"

    def test_record_stall_counts(self):
        proc = make_proc()
        from repro.core import StallReason
        proc.record_stall(StallReason("x", "y"))
        proc.record_stall(StallReason("x", "y"))
        assert proc.stalls["x"] == 2

    def test_issue_while_release_stalled_raises(self):
        proc = make_proc(proc_unacked_epoch_entries=1)
        proc.on_release_store(0)
        with pytest.raises(RuntimeError):
            proc.on_release_store(0)
