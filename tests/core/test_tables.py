"""Tests for bounded and partitioned look-up tables."""

import pytest

from repro.core import BoundedTable, PartitionedTable, TableFullError


class TestBoundedTable:
    def test_put_get_remove(self):
        table = BoundedTable("t", 4)
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.remove("a") == 1
        assert table.get("a") is None

    def test_capacity_enforced(self):
        table = BoundedTable("t", 2)
        table.put("a", 1)
        table.put("b", 2)
        assert table.full
        with pytest.raises(TableFullError):
            table.put("c", 3)

    def test_update_existing_when_full_ok(self):
        table = BoundedTable("t", 1)
        table.put("a", 1)
        table.put("a", 2)  # update, not insert
        assert table.get("a") == 2

    def test_has_room(self):
        table = BoundedTable("t", 3)
        table.put("a", 1)
        assert table.has_room(2)
        assert not table.has_room(3)

    def test_peak_occupancy_tracks_high_water(self):
        table = BoundedTable("t", 4, entry_bytes=4)
        table.put("a", 1)
        table.put("b", 2)
        table.remove("a")
        table.remove("b")
        assert len(table) == 0
        assert table.peak_occupancy == 2
        assert table.peak_bytes == 8

    def test_provisioned_bytes(self):
        assert BoundedTable("t", 8, entry_bytes=4).provisioned_bytes == 32

    def test_contains_and_iter(self):
        table = BoundedTable("t", 4)
        table.put("a", 1)
        assert "a" in table
        assert dict(iter(table)) == {"a": 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedTable("t", 0)


class TestPartitionedTable:
    def test_partitions_isolated(self):
        table = PartitionedTable("p", procs=2, entries_per_proc=1)
        table.put(0, "k", 1)
        # proc 0 is full; proc 1 still has room.
        assert not table.has_room(0)
        assert table.has_room(1)
        table.put(1, "k", 2)
        assert table.get(0, "k") == 1
        assert table.get(1, "k") == 2

    def test_overflow_confined_to_partition(self):
        table = PartitionedTable("p", procs=2, entries_per_proc=1)
        table.put(0, "a", 1)
        with pytest.raises(TableFullError):
            table.put(0, "b", 2)

    def test_unknown_proc_rejected(self):
        table = PartitionedTable("p", procs=2, entries_per_proc=1)
        with pytest.raises(KeyError):
            table.put(5, "a", 1)

    def test_peak_bytes_sums_partitions(self):
        table = PartitionedTable("p", procs=2, entries_per_proc=2,
                                 entry_bytes=4)
        table.put(0, "a", 1)
        table.put(1, "a", 1)
        table.put(1, "b", 1)
        assert table.peak_occupancy == 3
        assert table.peak_bytes == 12

    def test_remove_returns_value(self):
        table = PartitionedTable("p", procs=1, entries_per_proc=2)
        table.put(0, "a", 9)
        assert table.remove(0, "a") == 9
        assert table.remove(0, "a") is None
