"""Property-based tests on the CORD state machines.

These drive random (but protocol-legal) sequences of Algorithm 1/2 events
through the shared state machines and assert the invariants the paper's
correctness argument rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CordConfig
from repro.core import CordDirectoryState, CordProcessorState

DIRS = 3


def _drive(proc, directories, actions):
    """Apply a random action script, respecting stall conditions the way the
    protocol actors do (skip blocked issues, deliver eagerly)."""
    in_flight_relaxed = []       # (dir, meta)
    in_flight_releases = []      # (dir, release, [(pending_dir, req)])
    delivered_notifies = []

    def try_progress():
        changed = True
        while changed:
            changed = False
            for entry in list(in_flight_releases):
                dir_index, release, requests = entry
                for pending_dir, request in list(requests):
                    pending = directories[pending_dir]
                    if pending.req_notify_block_reason(request) is None:
                        notify = pending.consume_req_notify(request)
                        directories[dir_index].on_notify(notify)
                        requests.remove((pending_dir, request))
                        changed = True
                if not requests and directories[dir_index].release_block_reason(
                    release
                ) is None:
                    directories[dir_index].commit_release(release)
                    proc.on_release_ack(dir_index, release.epoch)
                    in_flight_releases.remove(entry)
                    changed = True

    for kind, dir_index in actions:
        if kind == "relaxed":
            if proc.relaxed_stall_reason(dir_index) is not None:
                continue
            meta = proc.on_relaxed_store(dir_index)
            directories[dir_index].on_relaxed(meta)  # deliver immediately
        else:
            if proc.release_stall_reason(dir_index) is not None:
                try_progress()
                if proc.release_stall_reason(dir_index) is not None:
                    continue
            issue = proc.on_release_store(dir_index)
            in_flight_releases.append(
                (dir_index, issue.release, list(issue.notifications))
            )
        try_progress()
    try_progress()
    return in_flight_releases


@st.composite
def action_scripts(draw):
    return draw(st.lists(
        st.tuples(st.sampled_from(["relaxed", "release"]),
                  st.integers(min_value=0, max_value=DIRS - 1)),
        max_size=60,
    ))


class TestProtocolInvariants:
    @settings(max_examples=80, deadline=None)
    @given(actions=action_scripts())
    def test_all_releases_eventually_commit(self, actions):
        """With eager delivery, nothing is ever permanently stuck
        (deadlock-freedom at the state-machine level)."""
        config = CordConfig()
        proc = CordProcessorState(0, config)
        directories = [CordDirectoryState(d, 1, config) for d in range(DIRS)]
        stuck = _drive(proc, directories, actions)
        assert stuck == []
        assert proc.total_unacked() == 0

    @settings(max_examples=80, deadline=None)
    @given(actions=action_scripts())
    def test_releases_commit_in_epoch_order_per_directory(self, actions):
        """largestEp[proc] never decreases and epochs commit in order."""
        config = CordConfig()
        proc = CordProcessorState(0, config)

        committed_orders = {d: [] for d in range(DIRS)}

        class SpyDir(CordDirectoryState):
            def commit_release(self, meta):
                committed_orders[self.directory].append(meta.epoch)
                super().commit_release(meta)

        directories = [SpyDir(d, 1, config) for d in range(DIRS)]
        _drive(proc, directories, actions)
        for epochs in committed_orders.values():
            assert epochs == sorted(epochs)

    @settings(max_examples=80, deadline=None)
    @given(actions=action_scripts())
    def test_table_occupancy_never_exceeds_provisioning(self, actions):
        config = CordConfig()
        proc = CordProcessorState(0, config)
        directories = [CordDirectoryState(d, 1, config) for d in range(DIRS)]
        _drive(proc, directories, actions)
        assert proc.unacked.peak_occupancy <= config.proc_unacked_epoch_entries
        assert (proc.store_counters.peak_occupancy
                <= config.proc_store_counter_entries)
        for directory in directories:
            per_proc = directory.store_counters.partition(0)
            assert (per_proc.peak_occupancy
                    <= config.dir_store_counter_entries_per_proc)

    @settings(max_examples=80, deadline=None)
    @given(actions=action_scripts())
    def test_epoch_count_matches_release_count(self, actions):
        config = CordConfig()
        proc = CordProcessorState(0, config)
        directories = [CordDirectoryState(d, 1, config) for d in range(DIRS)]
        _drive(proc, directories, actions)
        releases = sum(d.releases_committed for d in directories)
        assert proc.epoch.value == releases
        relaxed = sum(d.relaxed_committed for d in directories)
        assert proc.relaxed_issued == relaxed

    @settings(max_examples=60, deadline=None)
    @given(actions=action_scripts(),
           unacked_entries=st.integers(min_value=1, max_value=4))
    def test_under_provisioned_tables_still_progress(self, actions,
                                                     unacked_entries):
        """§4.3: tiny tables cause stalls, never corruption or deadlock."""
        config = CordConfig(proc_unacked_epoch_entries=unacked_entries)
        proc = CordProcessorState(0, config)
        directories = [CordDirectoryState(d, 1, config) for d in range(DIRS)]
        stuck = _drive(proc, directories, actions)
        assert stuck == []
        assert proc.total_unacked() == 0
