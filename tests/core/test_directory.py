"""Tests for the CORD directory-side state machine (Algorithm 2)."""

import pytest

from repro.config import CordConfig
from repro.core import (
    CordDirectoryState,
    CordProcessorState,
    NotifyMeta,
    ReleaseMeta,
    RelaxedMeta,
    ReqNotifyMeta,
)


def make_dir(procs=2, **overrides):
    return CordDirectoryState(0, procs, CordConfig(**overrides))


def rel(proc=0, epoch=0, counter=0, last_prev=None, noti=0):
    return ReleaseMeta(proc=proc, epoch=epoch, counter=counter,
                       last_prev_epoch=last_prev, noti_cnt=noti)


class TestRelaxedCommit:
    def test_relaxed_commits_immediately_and_counts(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(proc=0, epoch=0))
        directory.on_relaxed(RelaxedMeta(proc=0, epoch=0))
        directory.on_relaxed(RelaxedMeta(proc=1, epoch=0))
        assert directory.store_counters.get(0, 0) == 2
        assert directory.store_counters.get(1, 0) == 1
        assert directory.relaxed_committed == 3

    def test_counters_tracked_per_epoch(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(proc=0, epoch=0))
        directory.on_relaxed(RelaxedMeta(proc=0, epoch=1))
        assert directory.store_counters.get(0, 0) == 1
        assert directory.store_counters.get(0, 1) == 1


class TestReleaseCommit:
    def test_release_blocked_until_counter_matches(self):
        directory = make_dir()
        release = rel(counter=2)
        assert "store counter mismatch" in directory.release_block_reason(release)
        directory.on_relaxed(RelaxedMeta(0, 0))
        directory.on_relaxed(RelaxedMeta(0, 0))
        assert directory.release_block_reason(release) is None

    def test_release_blocked_on_uncommitted_prior_epoch(self):
        directory = make_dir()
        release = rel(epoch=1, last_prev=0)
        assert "not committed" in directory.release_block_reason(release)
        directory.commit_release(rel(epoch=0))
        assert directory.release_block_reason(release) is None

    def test_release_blocked_until_notifications_arrive(self):
        directory = make_dir()
        release = rel(noti=2)
        assert "waiting notifications" in directory.release_block_reason(release)
        directory.on_notify(NotifyMeta(proc=0, epoch=0))
        assert "waiting notifications" in directory.release_block_reason(release)
        directory.on_notify(NotifyMeta(proc=0, epoch=0))
        assert directory.release_block_reason(release) is None

    def test_commit_updates_largest_and_reclaims(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(0, 0))
        directory.commit_release(rel(counter=1))
        assert directory.largest_committed[0] == 0
        # Entries for the committed epoch are reclaimed (§4.3).
        assert directory.store_counters.get(0, 0) is None
        assert directory.notification_counters.get(0, 0) is None

    def test_commit_not_ready_raises(self):
        directory = make_dir()
        with pytest.raises(RuntimeError):
            directory.commit_release(rel(counter=5))

    def test_per_proc_isolation(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(proc=1, epoch=0))
        # proc 0's release with counter 0 is unaffected by proc 1's stores.
        assert directory.release_block_reason(rel(proc=0)) is None


class TestReqNotify:
    def test_req_notify_waits_for_counter(self):
        directory = make_dir()
        request = ReqNotifyMeta(proc=0, epoch=0, counter=1,
                                last_prev_epoch=None, noti_dst=7)
        assert directory.req_notify_block_reason(request) is not None
        directory.on_relaxed(RelaxedMeta(0, 0))
        assert directory.req_notify_block_reason(request) is None

    def test_req_notify_waits_for_prior_epoch(self):
        directory = make_dir()
        request = ReqNotifyMeta(proc=0, epoch=1, counter=0,
                                last_prev_epoch=0, noti_dst=7)
        assert directory.req_notify_block_reason(request) is not None
        directory.commit_release(rel(epoch=0))
        assert directory.req_notify_block_reason(request) is None

    def test_consume_emits_notify_and_reclaims(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(0, 0))
        request = ReqNotifyMeta(proc=0, epoch=0, counter=1,
                                last_prev_epoch=None, noti_dst=7)
        notify = directory.consume_req_notify(request)
        assert notify == NotifyMeta(proc=0, epoch=0)
        assert directory.store_counters.get(0, 0) is None
        assert directory.notifications_sent == 1

    def test_consume_not_ready_raises(self):
        directory = make_dir()
        request = ReqNotifyMeta(proc=0, epoch=0, counter=3,
                                last_prev_epoch=None, noti_dst=7)
        with pytest.raises(RuntimeError):
            directory.consume_req_notify(request)


class TestEndToEndOrdering:
    def test_full_relaxed_release_protocol_round(self):
        """Drive Alg. 1 + Alg. 2 together across two directories."""
        config = CordConfig()
        proc = CordProcessorState(0, config)
        dir_data = CordDirectoryState(1, 1, config)
        dir_flag = CordDirectoryState(5, 1, config)

        relaxed_meta = proc.on_relaxed_store(1)
        issue = proc.on_release_store(5)
        assert issue.release.noti_cnt == 1

        # Release arrives before the relaxed store is confirmed: blocked.
        assert dir_flag.release_block_reason(issue.release) is not None

        # Relaxed store arrives at its directory; req-notify consumed there.
        dir_data.on_relaxed(relaxed_meta)
        (pending_dir, request), = issue.notifications
        assert pending_dir == 1
        notify = dir_data.consume_req_notify(request)

        # Notification reaches the flag directory: release can commit.
        dir_flag.on_notify(notify)
        assert dir_flag.release_block_reason(issue.release) is None
        dir_flag.commit_release(issue.release)
        proc.on_release_ack(5, issue.release.epoch)
        assert proc.total_unacked() == 0

    def test_peak_table_bytes_reported(self):
        directory = make_dir()
        directory.on_relaxed(RelaxedMeta(0, 0))
        directory.on_notify(NotifyMeta(0, 0))
        sizes = directory.peak_table_bytes()
        assert sizes["store_counters"] > 0
        assert sizes["notification_counters"] > 0
        assert sizes["largest_committed"] > 0
