"""Tests for modular sequence-number arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequenceSpace, unwrap, wrap


class TestWrap:
    def test_wrap_truncates(self):
        assert wrap(0, 8) == 0
        assert wrap(255, 8) == 255
        assert wrap(256, 8) == 0
        assert wrap(257, 8) == 1

    def test_unwrap_recovers_nearby_value(self):
        for true_value in (0, 1, 255, 256, 300, 1000):
            wire = wrap(true_value, 8)
            assert unwrap(wire, reference=true_value, bits=8) == true_value

    def test_unwrap_with_offset_reference(self):
        # True value 260, directory's reference is 255 (wire 4).
        assert unwrap(wrap(260, 8), reference=255, bits=8) == 260

    @settings(max_examples=200, deadline=None)
    @given(
        value=st.integers(min_value=0, max_value=10_000),
        offset=st.integers(min_value=-100, max_value=100),
        bits=st.sampled_from([4, 8, 16]),
    )
    def test_roundtrip_within_half_modulus(self, value, offset, bits):
        reference = max(0, value + offset)
        if abs(value - reference) < (1 << bits) // 2:
            assert unwrap(wrap(value, bits), reference, bits) == value


class TestSequenceSpace:
    def test_advance_increments(self):
        seq = SequenceSpace(bits=8)
        assert seq.value == 0
        assert seq.advance() == 1
        assert seq.value == 1

    def test_wire_wraps(self):
        seq = SequenceSpace(bits=2, value=5)
        assert seq.wire() == 1

    def test_would_alias_at_window_limit(self):
        seq = SequenceSpace(bits=2)  # modulus 4
        seq.value = 3
        assert seq.would_alias(oldest_outstanding=0)
        assert not seq.would_alias(oldest_outstanding=1)

    def test_no_alias_when_nothing_outstanding(self):
        seq = SequenceSpace(bits=2, value=100)
        assert not seq.would_alias(oldest_outstanding=100)

    def test_at_max(self):
        seq = SequenceSpace(bits=2, value=3)
        assert seq.at_max()
        seq.advance()
        assert not seq.at_max()

    @settings(max_examples=100, deadline=None)
    @given(advances=st.integers(min_value=0, max_value=300),
           bits=st.sampled_from([2, 4, 8]))
    def test_wire_always_fits_bits(self, advances, bits):
        seq = SequenceSpace(bits=bits)
        for _ in range(advances):
            seq.advance()
        assert 0 <= seq.wire() < (1 << bits)
        assert seq.value == advances
