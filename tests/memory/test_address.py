"""Tests for physical address mapping."""

import pytest

from repro.config import SystemConfig
from repro.memory import AddressMap


@pytest.fixture
def amap():
    return AddressMap(SystemConfig())  # 8 hosts x 8 slices, 4 GB regions


class TestLineMath:
    def test_line_address_truncates(self, amap):
        assert amap.line_address(0) == 0
        assert amap.line_address(63) == 0
        assert amap.line_address(64) == 64
        assert amap.line_address(130) == 128

    def test_lines_spanned(self, amap):
        assert amap.lines_spanned(0, 1) == 1
        assert amap.lines_spanned(0, 64) == 1
        assert amap.lines_spanned(0, 65) == 2
        assert amap.lines_spanned(60, 8) == 2
        assert amap.lines_spanned(0, 4096) == 64


class TestHostMapping:
    def test_host_regions_are_contiguous(self, amap):
        region = amap.host_region_bytes
        assert amap.host_of(0) == 0
        assert amap.host_of(region - 1) == 0
        assert amap.host_of(region) == 1
        assert amap.host_of(7 * region) == 7

    def test_address_beyond_last_host_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.host_of(8 * amap.host_region_bytes)

    def test_address_in_host_roundtrip(self, amap):
        addr = amap.address_in_host(3, 0x1234)
        assert amap.host_of(addr) == 3
        assert addr % amap.host_region_bytes == 0x1234

    def test_offset_outside_region_rejected(self, amap):
        with pytest.raises(ValueError):
            amap.address_in_host(0, amap.host_region_bytes)


class TestSliceInterleaving:
    def test_consecutive_lines_interleave_across_slices(self, amap):
        slices = [amap.slice_of(line * 64) for line in range(8)]
        assert slices == list(range(8))

    def test_same_line_same_slice(self, amap):
        assert amap.slice_of(0) == amap.slice_of(63)

    def test_home_directory_matches_host_and_slice(self, amap):
        addr = amap.address_in_host(2, 64)  # host 2, line 1 -> slice 1
        home = amap.home_directory(addr)
        assert home.kind == "dir"
        assert home.host == 2
        assert home.index == 2 * 8 + 1

    def test_home_directory_deterministic(self, amap):
        addr = amap.address_in_host(5, 0x8000)
        assert amap.home_directory(addr) == amap.home_directory(addr)
