"""Tests for the LLC slice + directory entries."""

from repro.config import CacheConfig, MemoryConfig
from repro.memory import DirEntryState, LlcSlice


def make_slice():
    return LlcSlice(CacheConfig(64 * 1024, 8, 8), MemoryConfig())


class TestWriteThroughCommit:
    def test_commit_counts_stores_and_bytes(self):
        slc = make_slice()
        slc.commit_write_through(0x100, 64)
        slc.commit_write_through(0x140, 8)
        assert slc.write_through_commits == 2
        assert slc.bytes_committed == 72

    def test_commit_installs_line_dirty(self):
        slc = make_slice()
        slc.commit_write_through(0x100, 64)
        assert slc.storage.lookup(0x100).dirty

    def test_commit_hit_has_no_dram_cost(self):
        slc = make_slice()
        slc.commit_write_through(0x100, 64)
        assert slc.commit_write_through(0x100, 64) == 0.0

    def test_read_miss_costs_dram(self):
        slc = make_slice()
        assert slc.read_line(0x5000) > 0.0
        assert slc.dram.reads == 1

    def test_read_hit_is_free(self):
        slc = make_slice()
        slc.read_line(0x5000)
        assert slc.read_line(0x5000) == 0.0


class TestDirectoryEntries:
    def test_entry_created_on_demand(self):
        slc = make_slice()
        entry = slc.directory_entry(0x100)
        assert entry.state is DirEntryState.UNCACHED
        assert entry.owner is None
        assert entry.sharers == set()

    def test_entry_identity_stable(self):
        slc = make_slice()
        assert slc.directory_entry(0x100) is slc.directory_entry(0x100)

    def test_drop_entry(self):
        slc = make_slice()
        entry = slc.directory_entry(0x100)
        entry.sharers.add(3)
        slc.drop_entry(0x100)
        assert slc.directory_entry(0x100).sharers == set()

    def test_tracked_lines(self):
        slc = make_slice()
        slc.directory_entry(0x100)
        slc.directory_entry(0x200)
        assert slc.tracked_lines() == 2
