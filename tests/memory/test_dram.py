"""Tests for the DRAM timing model."""

import pytest

from repro.config import MemoryConfig
from repro.memory import Dram


class TestDram:
    def test_access_latency_floor(self):
        dram = Dram(MemoryConfig())
        assert dram.access_ns(0) == pytest.approx(40.0)

    def test_bandwidth_term_scales_with_size(self):
        dram = Dram(MemoryConfig())
        small = dram.access_ns(64)
        big = dram.access_ns(64 * 1024)
        assert big > small

    def test_total_bandwidth_aggregates_channels(self):
        config = MemoryConfig(channels=8, channel_bandwidth_gbps=64.0)
        dram = Dram(config)
        assert dram.total_bandwidth_bytes_per_ns == 512.0

    def test_read_write_accounting(self):
        dram = Dram(MemoryConfig())
        dram.read(64)
        dram.read(64)
        dram.write(128)
        assert dram.reads == 2
        assert dram.writes == 1
        assert dram.bytes_read == 128
        assert dram.bytes_written == 128

    def test_read_returns_latency(self):
        dram = Dram(MemoryConfig())
        assert dram.read(64) == pytest.approx(dram.access_ns(64))
