"""Tests for the set-associative MESI cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.memory import MesiState, SetAssocCache


def make_cache(size=1024, ways=2, line=64):
    return SetAssocCache(CacheConfig(size, ways, 1, line_bytes=line))


class TestBasics:
    def test_empty_lookup_misses(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        assert cache.misses == 1

    def test_insert_then_hit(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.SHARED)
        line = cache.lookup(0x100)
        assert line is not None
        assert line.state is MesiState.SHARED
        assert cache.hits == 1

    def test_lookup_any_byte_in_line(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.EXCLUSIVE)
        assert cache.lookup(0x100 + 63) is not None
        assert cache.lookup(0x100 + 64) is None

    def test_insert_upgrades_existing_state(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.SHARED)
        assert cache.insert(0x100, MesiState.MODIFIED) is None
        assert cache.lookup(0x100).state is MesiState.MODIFIED

    def test_set_state(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.EXCLUSIVE)
        cache.set_state(0x100, MesiState.MODIFIED)
        assert cache.lookup(0x100).dirty

    def test_set_state_invalid_removes(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.SHARED)
        cache.set_state(0x100, MesiState.INVALID)
        assert not cache.contains(0x100)

    def test_set_state_missing_line_raises(self):
        with pytest.raises(KeyError):
            make_cache().set_state(0x100, MesiState.SHARED)

    def test_invalidate_reports_dirtiness(self):
        cache = make_cache()
        cache.insert(0x100, MesiState.MODIFIED)
        assert cache.invalidate(0x100) is True
        cache.insert(0x140, MesiState.SHARED)
        assert cache.invalidate(0x140) is False
        assert cache.invalidate(0x999000) is False


class TestReplacement:
    def test_eviction_on_conflict(self):
        cache = make_cache(size=256, ways=2, line=64)  # 2 sets
        # Three lines mapping to set 0: line addrs 0, 128, 256.
        cache.insert(0, MesiState.SHARED)
        cache.insert(128, MesiState.SHARED)
        eviction = cache.insert(256, MesiState.SHARED)
        assert eviction is not None
        assert eviction.addr == 0  # LRU victim

    def test_lru_touch_on_lookup(self):
        cache = make_cache(size=256, ways=2, line=64)
        cache.insert(0, MesiState.SHARED)
        cache.insert(128, MesiState.SHARED)
        cache.lookup(0)  # 0 becomes MRU
        eviction = cache.insert(256, MesiState.SHARED)
        assert eviction.addr == 128

    def test_dirty_eviction_flagged(self):
        cache = make_cache(size=256, ways=2, line=64)
        cache.insert(0, MesiState.MODIFIED)
        cache.insert(128, MesiState.SHARED)
        eviction = cache.insert(256, MesiState.SHARED)
        assert eviction.dirty

    def test_occupancy_and_dirty_lines(self):
        cache = make_cache()
        cache.insert(0x000, MesiState.MODIFIED)
        cache.insert(0x040, MesiState.SHARED)
        cache.insert(0x080, MesiState.MODIFIED)
        assert cache.occupancy() == 3
        assert sorted(cache.dirty_lines()) == [0x000, 0x080]

    def test_state_counts(self):
        cache = make_cache()
        cache.insert(0x000, MesiState.MODIFIED)
        cache.insert(0x040, MesiState.SHARED)
        counts = cache.state_counts()
        assert counts[MesiState.MODIFIED] == 1
        assert counts[MesiState.SHARED] == 1


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                    max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = make_cache(size=512, ways=2, line=64)  # 8 lines capacity
        for addr in addrs:
            cache.insert(addr, MesiState.SHARED)
        assert cache.occupancy() <= 8
        # Per-set occupancy never exceeds associativity.
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                    max_size=100))
    def test_most_recent_insert_always_present(self, addrs):
        cache = make_cache(size=512, ways=2, line=64)
        for addr in addrs:
            cache.insert(addr, MesiState.SHARED)
            assert cache.contains(addr)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["insert", "invalidate", "lookup"]),
                  st.integers(min_value=0, max_value=1023)),
        max_size=150,
    ))
    def test_dirty_lines_always_modified(self, ops):
        cache = make_cache(size=512, ways=2, line=64)
        for op, addr in ops:
            if op == "insert":
                state = MesiState.MODIFIED if addr % 2 else MesiState.SHARED
                cache.insert(addr, state)
            elif op == "invalidate":
                cache.invalidate(addr)
            else:
                cache.lookup(addr)
        for line_addr in cache.dirty_lines():
            assert cache.lookup(line_addr, touch=False).state is MesiState.MODIFIED
