"""Tests for storage-overhead accounting (Fig. 11 / Fig. 12)."""

from repro import Machine, SystemConfig
from repro.overheads import collect_storage
from repro.workloads import AtaSpec, build_ata_programs


def run_ata(hosts=3, rounds=6):
    config = SystemConfig().scaled(hosts=hosts, cores_per_host=1)
    machine = Machine(config, protocol="cord")
    result = machine.run(build_ata_programs(AtaSpec(rounds=rounds), config))
    return collect_storage(result)


class TestStorageReport:
    def test_ata_consumes_proc_and_dir_storage(self):
        report = run_ata()
        assert report.max_proc_bytes > 0
        assert report.max_dir_bytes > 0

    def test_proc_storage_is_paper_magnitude(self):
        """Fig. 11: processor storage stays tiny (tens of bytes)."""
        report = run_ata(hosts=4)
        assert report.max_proc_bytes <= 64

    def test_dir_storage_is_paper_magnitude(self):
        """Fig. 11: directory storage well under 1.5 KB per slice."""
        report = run_ata(hosts=4)
        assert report.max_dir_bytes <= 1536

    def test_breakdowns_cover_components(self):
        report = run_ata()
        proc = report.proc_breakdown()
        assert "store_counters" in proc
        assert "unacked_epochs" in proc
        directory = report.dir_breakdown()
        assert "store_counters" in directory
        assert "notification_counters" in directory
        assert "network_buffer" in directory

    def test_storage_grows_with_hosts(self):
        small = run_ata(hosts=2)
        large = run_ata(hosts=4)
        assert large.max_dir_bytes >= small.max_dir_bytes
