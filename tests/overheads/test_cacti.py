"""Tests for the CACTI-style area/power model (Table 3)."""

import pytest

from repro.config import SystemConfig
from repro.overheads import SramMacro, cord_overhead_table, overhead_ratios


class TestSramMacro:
    def test_proc_store_counter_matches_table3(self):
        macro = SramMacro("proc.store_counter", entries=8, entry_bytes=4)
        assert macro.area_mm2 == pytest.approx(0.033, rel=0.05)
        assert macro.static_power_mw == pytest.approx(4.621, rel=0.05)
        assert macro.read_energy_nj == pytest.approx(0.016, rel=0.1)

    def test_dir_store_counter_matches_table3(self):
        macro = SramMacro("dir.store_counter", entries=128, entry_bytes=4)
        assert macro.area_mm2 == pytest.approx(0.045, rel=0.05)
        assert macro.static_power_mw == pytest.approx(7.776, rel=0.05)

    def test_dir_notification_matches_table3(self):
        macro = SramMacro("dir.notification", entries=256, entry_bytes=2)
        assert macro.area_mm2 == pytest.approx(0.058, rel=0.05)
        assert macro.static_power_mw == pytest.approx(11.057, rel=0.05)
        assert macro.write_energy_nj == pytest.approx(0.025, rel=0.1)

    def test_area_monotone_in_entries(self):
        small = SramMacro("s", entries=8, entry_bytes=4)
        big = SramMacro("b", entries=256, entry_bytes=4)
        assert big.area_mm2 > small.area_mm2
        assert big.static_power_mw > small.static_power_mw

    def test_size_bytes(self):
        assert SramMacro("s", entries=8, entry_bytes=4).size_bytes == 32


class TestOverheadTable:
    def test_table_has_paper_components(self):
        rows = cord_overhead_table(SystemConfig())
        components = {(r.location, r.component) for r in rows}
        assert ("processor", "store counter") in components
        assert ("processor", "unAck-ed epoch") in components
        assert ("directory", "store counter") in components
        assert ("directory", "notification counter") in components
        assert ("directory", "largest Comm. epoch") in components

    def test_table3_entry_counts(self):
        rows = {(r.location, r.component): r
                for r in cord_overhead_table(SystemConfig())}
        assert rows[("processor", "store counter")].entries == 8
        assert rows[("directory", "store counter")].entries == 8 * 16
        assert rows[("directory", "notification counter")].entries == 16 * 16

    def test_paper_headline_claims(self):
        """§5.4: < 0.2% directory area, < 1.3% power, < 1% dynamic energy
        relative to a host's LLC slices + directories."""
        ratios = overhead_ratios(cord_overhead_table(SystemConfig()))
        assert ratios["dir_area_ratio"] < 0.002
        assert ratios["dir_power_ratio"] < 0.014
        assert ratios["dynamic_energy_ratio"] < 0.01

    def test_processor_totals_match_paper_magnitude(self):
        rows = cord_overhead_table(SystemConfig())
        proc_area = sum(r.area_mm2 for r in rows if r.location == "processor")
        proc_power = sum(r.power_mw for r in rows if r.location == "processor")
        assert proc_area == pytest.approx(0.066, rel=0.05)
        assert proc_power == pytest.approx(9.242, rel=0.05)

    def test_directory_totals_match_paper_magnitude(self):
        rows = cord_overhead_table(SystemConfig())
        dir_area = sum(r.area_mm2 for r in rows if r.location == "directory")
        dir_power = sum(r.power_mw for r in rows if r.location == "directory")
        assert dir_area == pytest.approx(0.136, rel=0.05)
        assert dir_power == pytest.approx(23.454, rel=0.05)
