"""Tests for the §5.4 energy model."""

import pytest

from repro import Machine, SystemConfig
from repro.overheads.energy import energy_comparison, estimate_energy
from repro.workloads import app, build_workload_programs


@pytest.fixture(scope="module")
def runs():
    config = SystemConfig().scaled(hosts=4, cores_per_host=2)
    spec = app("CR").scaled(iterations=3)
    out = {}
    for protocol in ("mp", "cord", "so"):
        machine = Machine(config, protocol=protocol)
        out[protocol] = machine.run(build_workload_programs(spec, config))
    return out


class TestEstimate:
    def test_components_positive(self, runs):
        report = estimate_energy(runs["cord"])
        assert report.link_nj > 0
        assert report.llc_nj > 0
        assert report.table_nj > 0
        assert report.total_nj == pytest.approx(
            report.link_nj + report.llc_nj + report.table_nj
        )

    def test_link_energy_tracks_traffic(self, runs):
        cord = estimate_energy(runs["cord"])
        so = estimate_energy(runs["so"])
        ratio_energy = so.link_nj / cord.link_nj
        ratio_traffic = (runs["so"].inter_host_bytes
                         / runs["cord"].inter_host_bytes)
        assert ratio_energy == pytest.approx(ratio_traffic)

    def test_cord_table_energy_below_one_percent(self, runs):
        """§5.4: protocol dynamic energy is < 1 % of link + LLC energy."""
        report = estimate_energy(runs["cord"])
        assert report.protocol_overhead_fraction < 0.01

    def test_non_cord_protocols_have_no_table_energy(self, runs):
        assert estimate_energy(runs["mp"]).table_nj == 0
        assert estimate_energy(runs["so"]).table_nj == 0

    def test_so_costs_more_energy_than_cord(self, runs):
        """Acknowledgments cost energy proportional to their bytes (§3.1)."""
        assert estimate_energy(runs["so"]).total_nj > \
            estimate_energy(runs["cord"]).total_nj


class TestComparison:
    def test_rows_normalized_to_cord(self):
        rows = energy_comparison("CR")
        by_protocol = {r["protocol"]: r for r in rows}
        assert by_protocol["cord"]["vs_cord"] == pytest.approx(1.0)
        assert by_protocol["so"]["vs_cord"] > 1.0
        assert by_protocol["mp"]["vs_cord"] <= 1.0 + 1e-9
