"""Tests for the axiomatic RC/TSO history checkers."""

from repro.consistency import (
    EventKind,
    ExecutionHistory,
    Ordering,
    check_rc,
    check_tso,
)

X, Y = 0x100, 0x200


def _history(events):
    """events: (core, idx, kind, ordering, addr, value)."""
    history = ExecutionHistory()
    for core, idx, kind, ordering, addr, value in events:
        history.record(core, idx, kind, ordering, addr=addr, value=value)
    return history


class TestReleaseConsistency:
    def test_empty_history_valid(self):
        assert check_rc(ExecutionHistory()) == []

    def test_mp_pattern_with_sync_stale_read_flagged(self):
        # P0: X=1 (rlx); Y=1 (rel).  P1: acq-load Y=1; load X=0  -> violation.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        violations = check_rc(history)
        assert any(v.kind == "stale-initial-read" for v in violations)

    def test_mp_pattern_reading_fresh_value_valid(self):
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 1),
        ])
        assert check_rc(history) == []

    def test_mp_without_release_is_allowed(self):
        # Both stores relaxed: reading stale X is fine under RC.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELAXED, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        assert check_rc(history) == []

    def test_mp_without_acquire_is_allowed(self):
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.RELAXED, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        assert check_rc(history) == []

    def test_cumulativity_isa2(self):
        # Transitive sync through an intermediate thread (Fig. 3): stale X at
        # the end of the chain violates RC.
        Z = 0x300
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.STORE, Ordering.RELEASE, Z, 1),
            (2, 0, EventKind.LOAD, Ordering.ACQUIRE, Z, 1),
            (2, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        violations = check_rc(history)
        assert any(v.kind == "stale-initial-read" for v in violations)

    def test_overwritten_value_stale_read(self):
        # X=1 then X=2 (same location: coherence order), release-sync, then a
        # read of 1 is stale.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELAXED, X, 2),
            (0, 2, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 1),
        ])
        violations = check_rc(history)
        assert any(v.kind == "stale-read" for v in violations)

    def test_thin_air_read_flagged(self):
        history = _history([
            (0, 0, EventKind.LOAD, Ordering.RELAXED, X, 77),
        ])
        violations = check_rc(history)
        assert any(v.kind == "thin-air-read" for v in violations)

    def test_fence_orders_prior_stores(self):
        # Release fence between relaxed stores: consumer with acquire must
        # not see stale X after observing Y.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.FENCE, Ordering.RELEASE, None, None),
            (0, 2, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        assert check_rc(history)  # violation found


class TestTso:
    def test_store_store_reorder_forbidden_under_tso(self):
        # Under TSO (unlike RC) two relaxed stores stay ordered, and every
        # rf edge synchronizes.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELAXED, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.RELAXED, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        assert check_rc(history) == []      # allowed under RC
        assert check_tso(history) != []     # forbidden under TSO

    def test_store_load_reorder_allowed_under_tso(self):
        # SB: both threads read 0 — the one TSO relaxation.
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.LOAD, Ordering.RELAXED, Y, 0),
            (1, 0, EventKind.STORE, Ordering.RELAXED, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        assert check_tso(history) == []

    def test_tso_valid_ordered_history(self):
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELAXED, X, 1),
            (0, 1, EventKind.STORE, Ordering.RELAXED, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.RELAXED, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 1),
        ])
        assert check_tso(history) == []


class TestHappensBefore:
    def test_release_sync_creates_cross_core_edge(self):
        from repro.consistency import happens_before
        history = _history([
            (0, 0, EventKind.STORE, Ordering.RELEASE, Y, 1),
            (1, 0, EventKind.LOAD, Ordering.ACQUIRE, Y, 1),
            (1, 1, EventKind.LOAD, Ordering.RELAXED, X, 0),
        ])
        hb = happens_before(history, "rc")
        events = list(history)
        store_uid = events[0].uid
        last_load_uid = events[2].uid
        assert last_load_uid in hb[store_uid]
