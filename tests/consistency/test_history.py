"""Tests for execution histories."""

from repro.consistency import EventKind, ExecutionHistory, Ordering


class TestRecording:
    def test_uids_monotonic(self):
        history = ExecutionHistory()
        a = history.record(0, 0, EventKind.STORE, Ordering.RELAXED, 0x1, 1)
        b = history.record(0, 1, EventKind.LOAD, Ordering.RELAXED, 0x1, 1)
        assert b.uid == a.uid + 1

    def test_len_and_iter(self):
        history = ExecutionHistory()
        for i in range(5):
            history.record(0, i, EventKind.STORE, Ordering.RELAXED, i, i)
        assert len(history) == 5
        assert len(list(history)) == 5

    def test_by_core_sorted_by_program_index(self):
        history = ExecutionHistory()
        history.record(1, 2, EventKind.STORE, Ordering.RELAXED, 0x1, 1)
        history.record(1, 0, EventKind.STORE, Ordering.RELAXED, 0x2, 2)
        history.record(0, 0, EventKind.LOAD, Ordering.ACQUIRE, 0x1, 1)
        cores = history.by_core()
        assert set(cores) == {0, 1}
        assert [e.program_index for e in cores[1]] == [0, 2]

    def test_stores_to_filters_by_addr(self):
        history = ExecutionHistory()
        history.record(0, 0, EventKind.STORE, Ordering.RELAXED, 0x1, 1)
        history.record(0, 1, EventKind.STORE, Ordering.RELAXED, 0x2, 2)
        history.record(1, 0, EventKind.LOAD, Ordering.RELAXED, 0x1, 1)
        assert len(history.stores_to(0x1)) == 1


class TestRegisters:
    def test_set_and_get(self):
        history = ExecutionHistory()
        history.set_register(2, "r1", 42)
        assert history.register(2, "r1") == 42
        assert history.register(2, "r2") is None

    def test_register_outcome_flattening(self):
        history = ExecutionHistory()
        history.set_register(0, "r1", 1)
        history.set_register(1, "r0", 0)
        assert history.register_outcome() == {"P0:r1": 1, "P1:r0": 0}

    def test_event_store_load_flags(self):
        history = ExecutionHistory()
        store = history.record(0, 0, EventKind.STORE, Ordering.RELAXED, 1, 1)
        load = history.record(0, 1, EventKind.LOAD, Ordering.RELAXED, 1, 1)
        fence = history.record(0, 2, EventKind.FENCE, Ordering.ACQ_REL)
        assert store.is_store and not store.is_load
        assert load.is_load and not load.is_store
        assert not fence.is_store and not fence.is_load
