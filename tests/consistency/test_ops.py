"""Tests for memory-op constructors and annotations."""

from repro.consistency import MemOp, OpKind, Ordering, Policy


class TestOrdering:
    def test_release_flags(self):
        assert Ordering.RELEASE.is_release
        assert Ordering.ACQ_REL.is_release
        assert not Ordering.RELAXED.is_release
        assert not Ordering.ACQUIRE.is_release

    def test_acquire_flags(self):
        assert Ordering.ACQUIRE.is_acquire
        assert Ordering.ACQ_REL.is_acquire
        assert not Ordering.RELEASE.is_acquire


class TestConstructors:
    def test_store_defaults(self):
        op = MemOp.store(0x100, value=5)
        assert op.kind is OpKind.STORE
        assert op.is_store and not op.is_load
        assert op.ordering is Ordering.RELAXED
        assert op.policy is Policy.WRITE_THROUGH
        assert op.size == 8

    def test_release_store(self):
        op = MemOp.release_store(0x100)
        assert op.ordering is Ordering.RELEASE

    def test_load_carries_register(self):
        op = MemOp.load(0x100, "r1", ordering=Ordering.ACQUIRE)
        assert op.is_load
        assert op.register == "r1"

    def test_load_until(self):
        op = MemOp.load_until(0x100, 3, register="r2")
        assert op.kind is OpKind.LOAD_UNTIL
        assert op.value == 3
        assert op.ordering is Ordering.ACQUIRE

    def test_fence_default_full_barrier(self):
        assert MemOp.fence().ordering is Ordering.ACQ_REL

    def test_compute(self):
        op = MemOp.compute(123.0)
        assert op.kind is OpKind.COMPUTE
        assert op.duration_ns == 123.0
        assert not op.is_store and not op.is_load

    def test_str_forms(self):
        assert "compute" in str(MemOp.compute(1.0))
        assert "fence" in str(MemOp.fence())
        assert "store.rel" in str(MemOp.release_store(0x10))
