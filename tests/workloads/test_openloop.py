"""Tests for the open-loop load generator (scale experiment workload)."""

import pytest

from repro.config import SystemConfig
from repro.consistency import OpKind, Ordering
from repro.protocols.machine import Machine
from repro.workloads import OpenLoopSpec, build_openloop_programs
from repro.workloads.base import consumer_core, producer_core
from repro.workloads.openloop import (
    DELIVERY_LATENCY_STAT,
    SOURCE_LATENCY_STAT,
    arrival_schedule,
)

CONFIG = SystemConfig().scaled(hosts=2, cores_per_host=2)


class TestSpec:
    def test_defaults(self):
        spec = OpenLoopSpec()
        assert spec.arrival == "poisson"
        assert spec.request_bytes == 4 * 64
        assert spec.sampled_requests == spec.requests - spec.warmup

    def test_rejects_unknown_arrival_process(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(arrival="bursty")

    def test_rejects_non_positive_interarrival(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(interarrival_ns=0.0)

    def test_rejects_warmup_swallowing_every_request(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(requests=4, warmup=4)


class TestSchedule:
    def test_deterministic_in_seed_and_host(self):
        spec = OpenLoopSpec(requests=16, seed=3)
        assert arrival_schedule(spec, 0) == arrival_schedule(spec, 0)
        assert arrival_schedule(spec, 0) != arrival_schedule(spec, 1)
        reseeded = OpenLoopSpec(requests=16, seed=4)
        assert arrival_schedule(spec, 0) != arrival_schedule(reseeded, 0)

    def test_deterministic_arrival_is_evenly_spaced(self):
        spec = OpenLoopSpec(arrival="deterministic", interarrival_ns=500.0,
                            requests=4)
        assert arrival_schedule(spec, 0) == [500.0, 1000.0, 1500.0, 2000.0]

    def test_poisson_mean_gap_tracks_interarrival(self):
        spec = OpenLoopSpec(interarrival_ns=1_000.0, requests=2_000)
        times = arrival_schedule(spec, 0)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1_000.0, rel=0.1)

    def test_arrivals_strictly_increase(self):
        times = arrival_schedule(OpenLoopSpec(requests=64), 0)
        assert all(a < b for a, b in zip(times, times[1:]))


class TestPrograms:
    def test_needs_a_consumer_core(self):
        single = SystemConfig().scaled(hosts=2, cores_per_host=1)
        with pytest.raises(ValueError):
            build_openloop_programs(OpenLoopSpec(), single)

    def test_every_host_produces_and_consumes(self):
        programs = build_openloop_programs(OpenLoopSpec(requests=4), CONFIG)
        expected = set()
        for host in range(CONFIG.hosts):
            expected.add(producer_core(CONFIG, host))
            expected.add(consumer_core(CONFIG, host))
        assert set(programs) == expected

    def test_producer_paces_requests_with_absolute_arrivals(self):
        spec = OpenLoopSpec(requests=4)
        programs = build_openloop_programs(spec, CONFIG)
        producer = programs[producer_core(CONFIG, 0)]
        waits = [op.meta["until_ns"] for op in producer.ops
                 if op.kind is OpKind.COMPUTE and "until_ns" in op.meta]
        assert waits == arrival_schedule(spec, 0)

    def test_warmup_requests_are_not_sampled(self):
        spec = OpenLoopSpec(requests=5, warmup=2)
        programs = build_openloop_programs(spec, CONFIG)
        producer = programs[producer_core(CONFIG, 0)]
        releases = [op for op in producer.ops
                    if op.is_store and op.ordering is Ordering.RELEASE]
        assert len(releases) == spec.requests
        sampled = [op for op in releases if "sample_ns" in op.meta]
        assert len(sampled) == spec.sampled_requests
        assert all(op.meta["sample_ns"][0] == SOURCE_LATENCY_STAT
                   for op in sampled)

    def test_programs_end_with_drain_fence(self):
        programs = build_openloop_programs(OpenLoopSpec(requests=3), CONFIG)
        assert all(program.ops[-1].kind is OpKind.FENCE
                   for program in programs.values())


class TestEndToEnd:
    def test_latency_distributions_are_sampled_and_exported(self):
        spec = OpenLoopSpec(requests=8, warmup=2, interarrival_ns=1_000.0)
        machine = Machine(CONFIG, protocol="cord")
        result = machine.run(build_openloop_programs(spec, CONFIG))
        stats = result.stats.as_dict()
        sampled = CONFIG.hosts * spec.sampled_requests
        for name in (SOURCE_LATENCY_STAT, DELIVERY_LATENCY_STAT):
            assert stats[f"{name}.count"] == sampled
            assert (stats[f"{name}.p99"] >= stats[f"{name}.p95"]
                    >= stats[f"{name}.p50"] > 0)
        # End-to-end visibility costs at least a host crossing more than
        # local release retirement.
        assert (stats[f"{DELIVERY_LATENCY_STAT}.mean"]
                > stats[f"{SOURCE_LATENCY_STAT}.mean"])
