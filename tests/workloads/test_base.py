"""Tests for the generic workload generator."""

import pytest

from repro.config import SystemConfig
from repro.consistency import OpKind, Ordering
from repro.workloads import (
    WorkloadSpec,
    build_workload_programs,
    consumer_core,
    producer_core,
)


@pytest.fixture
def config():
    return SystemConfig().scaled(hosts=4, cores_per_host=2)


def small_spec(**overrides):
    defaults = dict(
        name="t", relaxed_granularity=64, release_granularity=256,
        fanout=1, iterations=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestStructure:
    def test_producer_and_consumer_per_host(self, config):
        programs = build_workload_programs(small_spec(), config)
        expected = set()
        for host in range(config.hosts):
            expected.add(producer_core(config, host))
            expected.add(consumer_core(config, host))
        assert set(programs) == expected

    def test_stores_per_release(self):
        assert small_spec().stores_per_release == 4
        assert small_spec(relaxed_granularity=8,
                          release_granularity=700).stores_per_release == 87

    def test_producer_emits_expected_store_counts(self, config):
        spec = small_spec(fanout=2, iterations=3)
        programs = build_workload_programs(spec, config)
        producer = programs[producer_core(config, 0)]
        relaxed = [op for op in producer.ops
                   if op.is_store and op.ordering is Ordering.RELAXED]
        releases = [op for op in producer.ops
                    if op.is_store and op.ordering is Ordering.RELEASE]
        assert len(relaxed) == spec.stores_per_release * 2 * 3
        assert len(releases) == 2 * 3  # one flag per target per iteration

    def test_producer_targets_only_fanout_hosts(self, config):
        from repro.memory import AddressMap
        amap = AddressMap(config)
        programs = build_workload_programs(small_spec(fanout=2), config)
        producer = programs[producer_core(config, 0)]
        store_hosts = {
            amap.host_of(op.addr) for op in producer.ops if op.is_store
        }
        assert store_hosts == {1, 2}

    def test_consumer_polls_each_source(self, config):
        programs = build_workload_programs(small_spec(fanout=2), config)
        consumer = programs[consumer_core(config, 0)]
        polls = [op for op in consumer.ops if op.kind is OpKind.LOAD_UNTIL]
        assert len(polls) == 2 * 2  # two sources x two iterations

    def test_lockstep_producers_wait_for_acks(self, config):
        programs = build_workload_programs(small_spec(window=1), config)
        producer = programs[producer_core(config, 0)]
        assert any(op.kind is OpKind.LOAD_UNTIL for op in producer.ops)

    def test_window_delays_first_ack_wait(self, config):
        lockstep = build_workload_programs(small_spec(window=1), config)
        pipelined = build_workload_programs(
            small_spec(window=2, iterations=4), config
        )
        def first_poll_index(programs):
            producer = programs[producer_core(config, 0)]
            return next(i for i, op in enumerate(producer.ops)
                        if op.kind is OpKind.LOAD_UNTIL)
        assert first_poll_index(pipelined) > first_poll_index(lockstep)

    def test_fanout_must_fit_hosts(self, config):
        with pytest.raises(ValueError):
            build_workload_programs(small_spec(fanout=4), config)

    def test_single_core_hosts_rejected(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        with pytest.raises(ValueError):
            build_workload_programs(small_spec(), config)


class TestReuse:
    def test_full_reuse_repeats_addresses(self, config):
        from repro.memory import AddressMap
        spec = small_spec(reuse_fraction=1.0, iterations=3)
        programs = build_workload_programs(spec, config)
        producer = programs[producer_core(config, 0)]
        relaxed = [op.addr for op in producer.ops
                   if op.is_store and op.ordering is Ordering.RELAXED]
        per_iter = spec.stores_per_release
        assert relaxed[:per_iter] == relaxed[per_iter:2 * per_iter]

    def test_no_reuse_walks_fresh_addresses(self, config):
        spec = small_spec(reuse_fraction=0.0, iterations=3)
        programs = build_workload_programs(spec, config)
        producer = programs[producer_core(config, 0)]
        relaxed = [op.addr for op in producer.ops
                   if op.is_store and op.ordering is Ordering.RELAXED]
        per_iter = spec.stores_per_release
        assert set(relaxed[:per_iter]).isdisjoint(relaxed[per_iter:2 * per_iter])


class TestTable2Catalog:
    def test_all_apps_present(self):
        from repro.workloads import APPLICATIONS, app_names
        assert app_names() == [
            "PR", "SSSP", "PAD", "TQH", "HSTI", "TRNS",
            "MOCFE", "CMC-2D", "BigFFT", "CR",
        ]
        assert len(APPLICATIONS) == 10

    def test_table2_granularity_classes(self):
        from repro.workloads import app
        assert app("PR").relaxed_granularity == 8      # word
        assert app("PAD").relaxed_granularity == 64    # line
        assert app("TQH").fanout == 1                  # low fan-out
        assert app("PR").fanout == 3                   # high fan-out

    def test_unknown_app_rejected(self):
        from repro.workloads import app
        with pytest.raises(KeyError):
            app("NOPE")

    def test_specs_buildable_on_default_harness_config(self):
        from repro.workloads import APPLICATIONS
        config = SystemConfig().scaled(hosts=4, cores_per_host=2)
        for spec in APPLICATIONS.values():
            programs = build_workload_programs(spec.scaled(iterations=1),
                                               config)
            assert programs
