"""Tests for trace serialization and replay (round-trip + property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, ProgramBuilder, SystemConfig
from repro.consistency.ops import AtomicOp, MemOp, OpKind, Ordering
from repro.workloads.trace import (
    TraceError,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)


def sample_programs():
    producer = (ProgramBuilder()
                .store(0x100000, value=1, size=64)
                .compute(250.0)
                .release_store(0x104000, value=1)
                .fetch_add(0x200000, 1, register="r2")
                .fence()
                .build())
    consumer = (ProgramBuilder()
                .load_until(0x104000, 1, register="r0")
                .load(0x100000, "r1")
                .build())
    return {0: producer, 1: consumer}


class TestRoundTrip:
    def test_text_round_trip_preserves_semantics(self):
        original = sample_programs()
        restored = loads_trace(dumps_trace(original))
        assert set(restored) == set(original)
        for core in original:
            assert len(restored[core].ops) == len(original[core].ops)
            for a, b in zip(original[core].ops, restored[core].ops):
                assert a.kind == b.kind
                assert a.addr == b.addr
                assert a.size == b.size
                assert a.ordering == b.ordering
                assert a.value == b.value
                assert a.register == b.register
                assert a.duration_ns == b.duration_ns
                assert a.meta.get("atomic") == b.meta.get("atomic")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        dump_trace(sample_programs(), path)
        restored = load_trace(path)
        assert set(restored) == {0, 1}

    def test_replay_produces_same_result_as_original(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)

        def run(programs):
            machine = Machine(config, protocol="cord")
            result = machine.run(programs)
            return (result.time_ns, result.inter_host_bytes,
                    result.history.register(1, "r1"))

        from repro.memory import AddressMap
        amap = AddressMap(config)
        data = amap.address_in_host(1, 0x1000)
        flag = amap.address_in_host(1, 0x2000)
        original = {
            0: (ProgramBuilder().store(data, value=9, size=64)
                .release_store(flag, value=1).build()),
            1: (ProgramBuilder().load_until(flag, 1)
                .load(data, register="r1").build()),
        }
        replayed = loads_trace(dumps_trace(original))
        assert run(original) == run(replayed)


class TestErrors:
    def test_missing_header_rejected(self):
        with pytest.raises(TraceError, match="header"):
            loads_trace("st rlx 0x0 8 1\n")

    def test_op_before_core_header_rejected(self):
        with pytest.raises(TraceError, match="before any"):
            loads_trace("# repro-trace v1\nst rlx 0x0 8 1\n")

    def test_duplicate_core_rejected(self):
        text = "# repro-trace v1\n[core 0]\n[core 0]\n"
        with pytest.raises(TraceError, match="duplicate"):
            loads_trace(text)

    def test_unknown_op_rejected(self):
        text = "# repro-trace v1\n[core 0]\nbogus rlx 0x0 8 1\n"
        with pytest.raises(TraceError, match="unknown op"):
            loads_trace(text)

    def test_malformed_fields_rejected(self):
        text = "# repro-trace v1\n[core 0]\nst rlx nothex 8 1\n"
        with pytest.raises(TraceError):
            loads_trace(text)

    def test_comments_and_blanks_ignored(self):
        text = ("# repro-trace v1\n\n# a comment\n[core 0]\n"
                "st rlx 0x0 8 1\n\n")
        programs = loads_trace(text)
        assert len(programs[0].ops) == 1


@st.composite
def random_programs(draw):
    ops = []
    count = draw(st.integers(min_value=0, max_value=30))
    for index in range(count):
        kind = draw(st.sampled_from(["st", "ld", "poll", "faa", "fence",
                                     "cmp"]))
        addr = draw(st.integers(min_value=0, max_value=2**20)) * 8
        ordering = draw(st.sampled_from(list(Ordering)))
        if kind == "st":
            ops.append(MemOp.store(addr, value=index, size=8,
                                   ordering=ordering))
        elif kind == "ld":
            ops.append(MemOp.load(addr, f"r{index}", ordering=ordering))
        elif kind == "poll":
            ops.append(MemOp.load_until(addr, index, f"r{index}"))
        elif kind == "faa":
            ops.append(MemOp.fetch_add(addr, index, f"r{index}"))
        elif kind == "fence":
            ops.append(MemOp.fence(ordering))
        else:
            ops.append(MemOp.compute(float(index)))
    from repro.cpu import Program
    return {0: Program(ops=ops)}


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(programs=random_programs())
    def test_round_trip_is_identity_on_wire_format(self, programs):
        once = dumps_trace(programs)
        twice = dumps_trace(loads_trace(once))
        assert once == twice
