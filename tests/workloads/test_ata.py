"""Tests for the ATA storage-stress workload (§5.4)."""

from repro.config import SystemConfig
from repro.consistency import Ordering
from repro.workloads import AtaSpec, build_ata_programs


class TestAta:
    def test_one_broadcaster_per_host(self):
        config = SystemConfig().scaled(hosts=4, cores_per_host=2)
        programs = build_ata_programs(AtaSpec(rounds=2), config)
        assert set(programs) == {0, 2, 4, 6}

    def test_each_peer_gets_payload_plus_release_flag(self):
        config = SystemConfig().scaled(hosts=3, cores_per_host=1)
        programs = build_ata_programs(AtaSpec(rounds=2), config)
        for program in programs.values():
            stores = [op for op in program.ops if op.is_store]
            releases = [op for op in stores
                        if op.ordering is Ordering.RELEASE]
            # one payload + one flag per peer per round
            assert len(stores) == 2 * 2 * 2
            assert len(releases) == 2 * 2

    def test_broadcast_covers_all_peers(self):
        from repro.memory import AddressMap
        config = SystemConfig().scaled(hosts=4, cores_per_host=1)
        amap = AddressMap(config)
        programs = build_ata_programs(AtaSpec(rounds=1), config)
        host0 = programs[0]
        targets = {amap.host_of(op.addr) for op in host0.ops if op.is_store}
        assert targets == {1, 2, 3}

    def test_payload_is_8_bytes(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        programs = build_ata_programs(AtaSpec(rounds=1), config)
        assert all(op.size == 8 for op in programs[0].ops if op.is_store)

    def test_runs_to_completion_under_cord(self):
        from repro import Machine
        config = SystemConfig().scaled(hosts=3, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        result = machine.run(build_ata_programs(AtaSpec(rounds=4), config))
        assert result.time_ns > 0
        # Release-only traffic: every store needed an ack for reclamation.
        assert result.message_count("rel_ack", "inter_host") > 0
