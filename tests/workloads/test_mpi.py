"""Tests for the MPI-over-shared-memory primitives (§5.1's port)."""

import pytest

from repro import Machine, SystemConfig
from repro.consistency import OpKind, Ordering
from repro.workloads import MpiWorld


@pytest.fixture
def config():
    return SystemConfig().scaled(hosts=4, cores_per_host=1)


class TestConstruction:
    def test_rank_count_defaults_to_hosts(self, config):
        assert MpiWorld(config).ranks == 4

    def test_too_many_ranks_rejected(self, config):
        with pytest.raises(ValueError):
            MpiWorld(config, ranks=5)

    def test_send_to_self_rejected(self, config):
        with pytest.raises(ValueError):
            MpiWorld(config).send(1, 1, 64)

    def test_build_only_once(self, config):
        world = MpiWorld(config)
        world.build()
        with pytest.raises(RuntimeError):
            world.build()


class TestSendRecv:
    def test_send_emits_relaxed_burst_plus_release_flag(self, config):
        world = MpiWorld(config, granularity=64)
        world.send(0, 1, 256)
        programs = world.build()
        ops = programs[0].ops
        relaxed = [op for op in ops
                   if op.is_store and op.ordering is Ordering.RELAXED]
        releases = [op for op in ops
                    if op.is_store and op.ordering is Ordering.RELEASE]
        assert len(relaxed) == 4      # 256 B / 64 B
        assert len(releases) == 1

    def test_payload_lands_in_receiver_region(self, config):
        from repro.memory import AddressMap
        amap = AddressMap(config)
        world = MpiWorld(config)
        world.send(0, 2, 64)
        programs = world.build()
        stores = [op for op in programs[0].ops if op.is_store]
        assert all(amap.host_of(op.addr) == 2 for op in stores)

    def test_flag_values_count_messages_per_channel(self, config):
        world = MpiWorld(config)
        world.send(0, 1, 64)
        world.recv(1, 0)
        world.send(0, 1, 64)
        world.recv(1, 0)
        programs = world.build()
        polls = [op for op in programs[1].ops
                 if op.kind is OpKind.LOAD_UNTIL]
        assert [op.value for op in polls] == [1, 2]

    def test_pipeline_runs_end_to_end(self, config):
        world = MpiWorld(config)
        for rank in range(4):
            world.send(rank, (rank + 1) % 4, 1024)
        for rank in range(4):
            world.recv((rank + 1) % 4, rank)
        machine = Machine(config, protocol="cord")
        result = machine.run(world.build())
        assert result.time_ns > 0


class TestCollectives:
    def test_barrier_synchronizes_all_ranks(self, config):
        world = MpiWorld(config)
        world.barrier()
        programs = world.build()
        for rank, program in enumerate(programs.values()):
            kinds = [op.kind for op in program.ops]
            assert OpKind.ATOMIC in kinds
            assert OpKind.LOAD_UNTIL in kinds

    @pytest.mark.parametrize("protocol", ["cord", "so", "mp"])
    def test_barrier_runs_under_protocols(self, config, protocol):
        world = MpiWorld(config)
        world.compute(0, 500.0)   # straggler
        world.barrier()
        machine = Machine(config, protocol=protocol)
        result = machine.run(world.build())
        # Nobody passes the barrier before the straggler arrives.
        assert result.time_ns >= 500.0

    def test_broadcast_reaches_all_ranks(self, config):
        world = MpiWorld(config)
        world.broadcast(0, 512)
        machine = Machine(config, protocol="cord")
        result = machine.run(world.build())
        assert result.time_ns > 0

    def test_alltoall_runs(self, config):
        world = MpiWorld(config)
        world.alltoall(128)
        machine = Machine(config, protocol="cord")
        result = machine.run(world.build())
        assert result.inter_host_bytes > 4 * 3 * 128  # payload moved

    def test_allreduce_runs(self, config):
        world = MpiWorld(config)
        world.allreduce(8)
        machine = Machine(config, protocol="cord")
        assert machine.run(world.build()).time_ns > 0


class TestProtocolComparison:
    def test_cord_beats_so_on_mpi_pipeline(self, config):
        def run(protocol):
            world = MpiWorld(config)
            for _ in range(6):
                for rank in range(4):
                    world.send(rank, (rank + 1) % 4, 2048)
                for rank in range(4):
                    world.recv((rank + 1) % 4, rank)
                world.barrier()
            machine = Machine(config, protocol=protocol)
            return machine.run(world.build()).time_ns

        assert run("cord") < run("so")
