"""Tests for the MPI-built DOE mini-apps."""

import pytest

from repro import Machine, SystemConfig
from repro.workloads import DOE_MPI_APPS, build_doe_programs


@pytest.fixture
def config():
    return SystemConfig().scaled(hosts=4, cores_per_host=1)


class TestConstruction:
    def test_catalog_matches_table2_doe_rows(self):
        assert set(DOE_MPI_APPS) == {"MOCFE", "CMC-2D", "BigFFT", "CR"}

    def test_unknown_app_rejected(self, config):
        with pytest.raises(KeyError):
            build_doe_programs("NOPE", config)

    def test_every_rank_gets_a_program(self, config):
        for name in DOE_MPI_APPS:
            programs = build_doe_programs(name, config)
            assert set(programs) == {0, 1, 2, 3}
            assert all(len(p) > 0 for p in programs.values())


class TestExecution:
    @pytest.mark.parametrize("name", sorted(DOE_MPI_APPS))
    @pytest.mark.parametrize("protocol", ["cord", "so", "mp"])
    def test_runs_to_completion(self, config, name, protocol):
        machine = Machine(config, protocol=protocol)
        result = machine.run(build_doe_programs(name, config))
        assert result.time_ns > 0
        assert result.inter_host_bytes > 0

    @pytest.mark.parametrize("name", sorted(DOE_MPI_APPS))
    def test_cord_beats_so(self, config, name):
        """The Fig.-7 headline holds for the MPI-built apps too."""
        times = {}
        for protocol in ("cord", "so"):
            machine = Machine(config, protocol=protocol)
            times[protocol] = machine.run(
                build_doe_programs(name, config)
            ).time_ns
        assert times["so"] > times["cord"] * 1.1

    def test_mocfe_reduction_synchronizes(self, config):
        """MOCFE ends each sweep with an all-reduce: ranks cannot drift a
        full sweep apart, so finish times are tightly grouped."""
        machine = Machine(config, protocol="cord")
        result = machine.run(build_doe_programs("MOCFE", config))
        finishes = sorted(result.core_finish_ns.values())
        assert finishes[-1] - finishes[0] < result.time_ns * 0.2

    def test_cr_ring_is_low_fanout(self, config):
        """CR only talks to ring neighbours: per-rank channel count is 1."""
        programs = build_doe_programs("CR", config)
        from repro.memory import AddressMap
        amap = AddressMap(config)
        stores = [op for op in programs[0].ops if op.is_store]
        target_hosts = {amap.host_of(op.addr) for op in stores}
        assert target_hosts == {1}  # successor only
