"""Tests for the sensitivity micro-benchmark (§5.3)."""

import pytest

from repro.config import SystemConfig
from repro.consistency import OpKind, Ordering
from repro.workloads import MicroSpec, build_micro_programs


class TestSpec:
    def test_defaults_match_paper(self):
        spec = MicroSpec()
        assert spec.store_granularity == 64
        assert spec.sync_granularity == 4 * 1024
        assert spec.fanout == 1

    def test_derived_counts(self):
        spec = MicroSpec(store_granularity=64, sync_granularity=4096,
                         total_bytes=64 * 1024)
        assert spec.stores_per_release == 64
        assert spec.releases == 16


class TestPrograms:
    def test_single_producer_on_host_zero(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        programs = build_micro_programs(MicroSpec(total_bytes=8192), config)
        assert set(programs) == {0}

    def test_fig5_pattern_release_targets_last_host(self):
        config = SystemConfig().scaled(hosts=4, cores_per_host=1)
        spec = MicroSpec(fanout=3, total_bytes=8192)
        programs = build_micro_programs(spec, config)
        from repro.memory import AddressMap
        amap = AddressMap(config)
        releases = [op for op in programs[0].ops
                    if op.is_store and op.ordering is Ordering.RELEASE]
        assert all(amap.host_of(op.addr) == 3 for op in releases)

    def test_stores_spread_across_targets_in_total(self):
        config = SystemConfig().scaled(hosts=4, cores_per_host=1)
        spec = MicroSpec(fanout=3, sync_granularity=4096, total_bytes=4096)
        programs = build_micro_programs(spec, config)
        from repro.memory import AddressMap
        amap = AddressMap(config)
        relaxed = [op for op in programs[0].ops
                   if op.is_store and op.ordering is Ordering.RELAXED]
        # m stores in total (not per target), round-robin over targets.
        assert len(relaxed) == spec.stores_per_release
        assert {amap.host_of(op.addr) for op in relaxed} == {1, 2, 3}

    def test_ends_with_drain_fence(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        programs = build_micro_programs(MicroSpec(total_bytes=4096), config)
        assert programs[0].ops[-1].kind is OpKind.FENCE

    def test_issue_gap_emits_compute_ops(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        spec = MicroSpec(total_bytes=4096, store_issue_ns=10.0)
        programs = build_micro_programs(spec, config)
        computes = [op for op in programs[0].ops
                    if op.kind is OpKind.COMPUTE]
        stores = [op for op in programs[0].ops if op.is_store]
        assert len(computes) == len(stores) - spec.releases  # one per relaxed

    def test_fanout_requires_enough_hosts(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        with pytest.raises(ValueError):
            build_micro_programs(MicroSpec(fanout=2), config)
