"""Tests for the ``repro.trace`` observability layer.

Pins the module's contract: bounded memory, zero allocation when
disabled, schema-valid Chrome trace export, and — the load-bearing one —
that Fig. 2 stall percentages derived from attribution spans match the
counter-derived values exactly (both are fed from the same ``stall()``
call sites, so any divergence means an instrumentation bug).
"""

import json

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.harness import stall_attribution_rows
from repro.harness.executor import Executor, RunSpec
from repro.trace import (
    FIG2_ACK_CAUSES,
    TraceCollector,
    TraceEvent,
    chrome_trace,
    fig2_wait_pct,
    stall_attribution,
    stall_time_ns,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.micro import MicroSpec


def _producer_consumer(protocol, trace=None):
    """A tiny two-host producer/consumer run; returns (machine, result)."""
    config = SystemConfig().scaled(hosts=2, cores_per_host=1)
    machine = Machine(config, protocol=protocol, trace=trace)
    flag = machine.address_map.address_in_host(1, 0x4000)
    data = machine.address_map.address_in_host(1, 0x8000)
    producer = (ProgramBuilder("producer")
                .store(data, value=42, size=64)
                .store(data + 64, value=43, size=64)
                .release_store(flag, value=1)
                .build())
    consumer = (ProgramBuilder("consumer")
                .load_until(flag, 1)
                .load(data, register="r0")
                .build())
    result = machine.run({0: producer, 1: consumer})
    return machine, result


class TestRingBuffer:
    def test_capacity_bounds_memory(self):
        collector = TraceCollector(capacity=4)
        for i in range(10):
            collector.instant("core0@h0", f"ev{i}", float(i))
        assert len(collector) == 4
        assert collector.recorded == 10
        assert collector.dropped == 6
        # The *oldest* events are the ones dropped.
        assert [e.name for e in collector] == ["ev6", "ev7", "ev8", "ev9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_empty_collector_is_truthy(self):
        # Instrumentation sites use ``if trace:`` as the enabled check;
        # an empty collector must not read as disabled.
        assert TraceCollector()

    def test_zero_length_stall_spans_dropped(self):
        collector = TraceCollector()
        collector.stall("core0@h0", "wait", 5.0, 5.0)
        assert len(collector) == 0

    def test_network_emits_no_zero_length_egress_spans(self):
        """Regression: every uncontended (and every intra-host) send used
        to call ``stall(..., now, now)`` for the egress queue; the network
        must only record spans for real port contention."""
        machine, _ = _producer_consumer("so", trace=TraceCollector())
        spans = [e for e in machine.trace
                 if e.kind == "stall" and e.name == "egress_queue"]
        assert all(e.dur_ns > 0 for e in spans)


class TestDisabledMode:
    def test_untraced_run_allocates_no_events(self, monkeypatch):
        """With tracing disabled no TraceEvent is ever constructed."""
        def boom(*args, **kwargs):
            raise AssertionError("TraceEvent built in a disabled run")

        monkeypatch.setattr("repro.trace.TraceEvent", boom)
        machine, result = _producer_consumer("so")  # trace=None
        assert machine.trace is None
        assert result.time_ns > 0

    def test_traced_run_is_byte_identical_to_untraced(self):
        """Tracing observes; it never perturbs the simulation."""
        _, untraced = _producer_consumer("cord")
        machine, traced = _producer_consumer("cord", trace=True)
        assert len(machine.trace) > 0
        assert traced.time_ns == untraced.time_ns
        assert traced.quiesce_ns == untraced.quiesce_ns
        assert traced.stats.as_dict() == untraced.stats.as_dict()


class TestChromeExport:
    def test_json_round_trip_validates(self, tmp_path):
        machine, _ = _producer_consumer("cord", trace=True)
        path = write_chrome_trace(machine.trace, tmp_path / "run.trace.json")
        data = json.loads(path.read_text())
        count = validate_chrome_trace(data)
        assert count >= len(machine.trace)  # + thread_name metadata
        assert data["otherData"]["dropped"] == 0
        names = {e["name"] for e in data["traceEvents"]}
        assert any(n.startswith("msg:wt_rel") for n in names)
        assert any(n.endswith(".epoch") for n in names)

    def test_event_kinds_map_to_phases(self):
        machine, _ = _producer_consumer("so", trace=True)
        data = chrome_trace(machine.trace)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        for event in data["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_validator_rejects_malformed_traces(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "ts": 0,
                                  "pid": 0, "tid": 1}]}
            )
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                  "pid": 0, "tid": 1}]}
            )


class TestStallAttribution:
    def test_fig2_span_derived_matches_counter_derived(self):
        """The acceptance-criterion differential check, at unit scale."""
        machine, result = _producer_consumer("so", trace=True)
        producers = [0]
        counter_stall = sum(
            result.core_stall_ns(core, cause)
            for core in producers for cause in FIG2_ACK_CAUSES
        )
        assert counter_stall > 0
        counter_pct = 100.0 * counter_stall / (
            result.time_ns * len(producers)
        )
        span_pct = fig2_wait_pct(machine.trace, result.time_ns, producers)
        assert span_pct == pytest.approx(counter_pct, abs=1e-9)

    def test_every_stall_counter_has_matching_spans(self):
        machine, result = _producer_consumer("cord", trace=True)
        for name, value in result.stats.as_dict().items():
            if not name.startswith("stall."):
                continue
            cause = name[len("stall."):]
            assert stall_time_ns(machine.trace, cause=cause) == (
                pytest.approx(value, abs=1e-9)
            ), f"span/counter mismatch for {cause}"

    def test_attribution_rows_sorted_and_percented(self):
        _, result = _producer_consumer("so", trace=True)
        rows = stall_attribution_rows(result)
        assert rows
        totals = [row["total_ns"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        assert all(0 <= row["time_pct"] for row in rows)

    def test_attribution_requires_a_traced_run(self):
        _, result = _producer_consumer("so")
        with pytest.raises(ValueError, match="not traced"):
            stall_attribution_rows(result)

    def test_aggregation_from_plain_event_lists(self):
        events = [
            TraceEvent("stall", 0.0, "core0@h0", "wait", dur_ns=5.0,
                       args={"core": 0}),
            TraceEvent("stall", 10.0, "core0@h0", "wait", dur_ns=3.0,
                       args={"core": 0}),
            TraceEvent("stall", 10.0, "core1@h0", "other", dur_ns=7.0,
                       args={"core": 1}),
        ]
        rows = stall_attribution(events)
        assert rows[0] == {"actor": "core0@h0", "cause": "wait",
                           "spans": 2, "total_ns": 8.0}
        assert stall_time_ns(events, cause="wait") == 8.0
        assert stall_time_ns(events, core=1) == 7.0


class TestExecutorIntegration:
    SPEC = dict(
        kind="micro", protocol="so",
        workload=MicroSpec(store_granularity=64, sync_granularity=512,
                           fanout=1, total_bytes=2048),
        config=SystemConfig().scaled(hosts=2, cores_per_host=1),
        seed=0, experiment="trace-test",
    )

    def test_traced_spec_exports_a_valid_trace(self, tmp_path):
        executor = Executor(trace_dir=tmp_path / "traces",
                            run_log=tmp_path / "runs.jsonl")
        record = executor.run(RunSpec(**self.SPEC))
        assert record.trace_path is not None
        data = json.loads(open(record.trace_path).read())
        validate_chrome_trace(data)
        assert record.trace_events > 0
        assert record.trace_stalls
        # Span-derived and counter-derived stalls agree on the record too.
        for cause in FIG2_ACK_CAUSES:
            assert record.span_stall_ns(cause=cause, core=0) == (
                pytest.approx(record.core_stall_ns(0, cause), abs=1e-9)
            )
        # The run log carries the trace path.
        from repro.harness import read_run_log
        lines = read_run_log(tmp_path / "runs.jsonl")
        assert lines[0]["trace_path"] == record.trace_path

    def test_trace_does_not_change_simulation_results(self):
        plain = Executor().run(RunSpec(**self.SPEC))
        traced = Executor().run(RunSpec(**dict(self.SPEC, trace=True)))
        assert traced.final_state_hash == plain.final_state_hash
        assert traced.stats == plain.stats
        assert traced.time_ns == plain.time_ns

    def test_trace_record_round_trips_through_cache(self, tmp_path):
        executor = Executor(cache_dir=tmp_path / "cache",
                            trace_dir=tmp_path / "traces")
        spec = RunSpec(**self.SPEC)
        cold = executor.run(spec)
        warm = executor.run(spec)
        assert warm.cached and not cold.cached
        assert warm.trace_stalls == cold.trace_stalls
        assert warm.trace_path == cold.trace_path
