"""Tests for the mesh + switch topology."""

import pytest

from repro.config import SystemConfig
from repro.interconnect import NodeId, Topology


@pytest.fixture
def topology():
    return Topology(SystemConfig())  # 8 hosts, 2x4 meshes


class TestGeometry:
    def test_tile_position_row_major(self, topology):
        assert topology.tile_position(0) == (0, 0)
        assert topology.tile_position(3) == (0, 3)
        assert topology.tile_position(4) == (1, 0)
        assert topology.tile_position(7) == (1, 3)

    def test_mesh_hops_manhattan(self, topology):
        assert topology.mesh_hops(0, 0) == 0
        assert topology.mesh_hops(0, 3) == 3
        assert topology.mesh_hops(0, 7) == 4
        assert topology.mesh_hops(4, 3) == 4

    def test_tile_of_wraps_per_host(self, topology):
        core = NodeId.core(9, 1)  # core 9 = host 1, tile 1
        assert topology.tile_of(core) == 1

    def test_edge_hops(self, topology):
        assert topology.edge_hops(0) == 0
        assert topology.edge_hops(3) == 3
        assert topology.edge_hops(4) == 1


class TestLatency:
    def test_intra_host_latency_scales_with_hops(self, topology):
        config = topology.config
        hop_ns = config.cycles_to_ns(config.interconnect.intra_host_hop_cycles)
        a = NodeId.core(0, 0)
        b = NodeId.directory(3, 0)
        assert topology.latency_ns(a, b) == pytest.approx(3 * hop_ns)

    def test_intra_host_same_tile_minimum_one_hop(self, topology):
        config = topology.config
        hop_ns = config.cycles_to_ns(config.interconnect.intra_host_hop_cycles)
        core = NodeId.core(0, 0)
        directory = NodeId.directory(0, 0)
        assert topology.latency_ns(core, directory) == pytest.approx(hop_ns)

    def test_inter_host_includes_link_latency(self, topology):
        a = NodeId.core(0, 0)
        b = NodeId.directory(8, 1)  # host 1, tile 0
        latency = topology.latency_ns(a, b)
        assert latency >= topology.config.interconnect.inter_host_latency_ns

    def test_crosses_hosts(self, topology):
        assert topology.crosses_hosts(NodeId.core(0, 0), NodeId.core(8, 1))
        assert not topology.crosses_hosts(NodeId.core(0, 0), NodeId.core(1, 0))

    def test_latency_symmetric(self, topology):
        a = NodeId.core(2, 0)
        b = NodeId.directory(13, 1)
        assert topology.latency_ns(a, b) == pytest.approx(
            topology.latency_ns(b, a)
        )

    def test_cxl_slower_than_upi(self):
        from repro.config import CXL, UPI
        cxl = Topology(SystemConfig().with_interconnect(CXL))
        upi = Topology(SystemConfig().with_interconnect(UPI))
        a, b = NodeId.core(0, 0), NodeId.directory(8, 1)
        assert cxl.latency_ns(a, b) > upi.latency_ns(a, b)
