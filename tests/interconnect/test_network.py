"""Tests for the timed network fabric."""

import pytest

from repro.config import SystemConfig
from repro.interconnect import Message, Network, NodeId
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    config = SystemConfig().scaled(hosts=2, cores_per_host=2)
    network = Network(sim, config)
    inbox = []
    core = NodeId.core(0, 0)
    local_dir = NodeId.directory(1, 0)
    remote_dir = NodeId.directory(2, 1)
    for node in (core, local_dir, remote_dir):
        network.register(node, inbox.append)
    return sim, network, inbox, core, local_dir, remote_dir


def _msg(src, dst, size=64, control=False, msg_type="wt_store"):
    return Message(src=src, dst=dst, msg_type=msg_type, size_bytes=size,
                   control=control)


class TestDelivery:
    def test_message_delivered_to_handler(self, setup):
        sim, network, inbox, core, local_dir, _ = setup
        message = _msg(core, local_dir)
        network.send(message)
        sim.run()
        assert inbox == [message]

    def test_unregistered_destination_rejected(self, setup):
        sim, network, _, core, _, _ = setup
        stranger = NodeId.directory(99, 1)
        with pytest.raises(KeyError):
            network.send(_msg(core, stranger))

    def test_duplicate_registration_rejected(self, setup):
        _, network, _, core, _, _ = setup
        with pytest.raises(ValueError):
            network.register(core, lambda m: None)

    def test_intra_host_faster_than_inter_host(self, setup):
        sim, network, _, core, local_dir, remote_dir = setup
        local_arrival = network.send(_msg(core, local_dir))
        remote_arrival = network.send(_msg(core, remote_dir))
        assert remote_arrival > local_arrival

    def test_inter_host_latency_includes_link(self, setup):
        sim, network, _, core, _, remote_dir = setup
        arrival = network.send(_msg(core, remote_dir, size=64))
        config = network.config
        assert arrival >= config.interconnect.inter_host_latency_ns

    def test_serialization_grows_with_size(self, setup):
        sim, network, _, core, _, remote_dir = setup
        small = network.send(_msg(core, remote_dir, size=16))
        # Fresh network to avoid port queuing from the first message.
        sim2 = Simulator()
        network2 = Network(sim2, network.config)
        network2.register(remote_dir, lambda m: None)
        big = network2.send(_msg(core, remote_dir, size=4096))
        assert big > small

    def test_egress_port_serializes_cross_host_messages(self, setup):
        sim, network, _, core, _, remote_dir = setup
        first = network.send(_msg(core, remote_dir, size=4096))
        second = network.send(_msg(core, remote_dir, size=4096))
        serialization = network.config.interconnect.serialization_ns(4096)
        assert second - first == pytest.approx(serialization)

    def test_per_host_pair_fifo(self, setup):
        sim, network, inbox, core, _, remote_dir = setup
        big = _msg(core, remote_dir, size=4096)
        small = _msg(core, remote_dir, size=8)
        network.send(big)
        network.send(small)
        sim.run()
        assert inbox == [big, small]


class TestAccounting:
    def test_inter_host_bytes_counted(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=100))
        assert network.inter_host_bytes() == 100

    def test_intra_host_not_counted_as_inter(self, setup):
        sim, network, _, core, local_dir, _ = setup
        network.send(_msg(core, local_dir, size=100))
        assert network.inter_host_bytes() == 0
        assert network.stats.value("traffic.intra_host.total") == 100

    def test_control_vs_data_split(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=16, control=True))
        network.send(_msg(core, remote_dir, size=80, control=False))
        assert network.inter_host_control_bytes() == 16
        assert network.inter_host_data_bytes() == 80

    def test_per_message_type_counts_and_bytes(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=24, msg_type="ack",
                          control=True))
        network.send(_msg(core, remote_dir, size=24, msg_type="ack",
                          control=True))
        assert network.stats.value("msgs.inter_host.ack") == 2
        assert network.stats.value("bytes.inter_host.ack") == 48
