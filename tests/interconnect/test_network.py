"""Tests for the timed network fabric."""

import pytest

from repro.config import SystemConfig
from repro.interconnect import Message, Network, NodeId
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    config = SystemConfig().scaled(hosts=2, cores_per_host=2)
    network = Network(sim, config)
    inbox = []
    core = NodeId.core(0, 0)
    local_dir = NodeId.directory(1, 0)
    remote_dir = NodeId.directory(2, 1)
    for node in (core, local_dir, remote_dir):
        network.register(node, inbox.append)
    return sim, network, inbox, core, local_dir, remote_dir


def _msg(src, dst, size=64, control=False, msg_type="wt_store"):
    return Message(src=src, dst=dst, msg_type=msg_type, size_bytes=size,
                   control=control)


class TestDelivery:
    def test_message_delivered_to_handler(self, setup):
        sim, network, inbox, core, local_dir, _ = setup
        message = _msg(core, local_dir)
        network.send(message)
        sim.run()
        assert inbox == [message]

    def test_unregistered_destination_rejected(self, setup):
        sim, network, _, core, _, _ = setup
        stranger = NodeId.directory(99, 1)
        with pytest.raises(KeyError):
            network.send(_msg(core, stranger))

    def test_duplicate_registration_rejected(self, setup):
        _, network, _, core, _, _ = setup
        with pytest.raises(ValueError):
            network.register(core, lambda m: None)

    def test_intra_host_faster_than_inter_host(self, setup):
        sim, network, _, core, local_dir, remote_dir = setup
        local_arrival = network.send(_msg(core, local_dir))
        remote_arrival = network.send(_msg(core, remote_dir))
        assert remote_arrival > local_arrival

    def test_inter_host_latency_includes_link(self, setup):
        sim, network, _, core, _, remote_dir = setup
        arrival = network.send(_msg(core, remote_dir, size=64))
        config = network.config
        assert arrival >= config.interconnect.inter_host_latency_ns

    def test_serialization_grows_with_size(self, setup):
        sim, network, _, core, _, remote_dir = setup
        small = network.send(_msg(core, remote_dir, size=16))
        # Fresh network to avoid port queuing from the first message.
        sim2 = Simulator()
        network2 = Network(sim2, network.config)
        network2.register(remote_dir, lambda m: None)
        big = network2.send(_msg(core, remote_dir, size=4096))
        assert big > small

    def test_egress_port_serializes_cross_host_messages(self, setup):
        sim, network, _, core, _, remote_dir = setup
        first = network.send(_msg(core, remote_dir, size=4096))
        second = network.send(_msg(core, remote_dir, size=4096))
        serialization = network.config.interconnect.serialization_ns(4096)
        assert second - first == pytest.approx(serialization)

    def test_per_host_pair_fifo(self, setup):
        sim, network, inbox, core, _, remote_dir = setup
        big = _msg(core, remote_dir, size=4096)
        small = _msg(core, remote_dir, size=8)
        network.send(big)
        network.send(small)
        sim.run()
        assert inbox == [big, small]


class TestAccounting:
    def test_inter_host_bytes_counted(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=100))
        assert network.inter_host_bytes() == 100

    def test_intra_host_not_counted_as_inter(self, setup):
        sim, network, _, core, local_dir, _ = setup
        network.send(_msg(core, local_dir, size=100))
        assert network.inter_host_bytes() == 0
        assert network.stats.value("traffic.intra_host.total") == 100

    def test_control_vs_data_split(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=16, control=True))
        network.send(_msg(core, remote_dir, size=80, control=False))
        assert network.inter_host_control_bytes() == 16
        assert network.inter_host_data_bytes() == 80

    def test_per_message_type_counts_and_bytes(self, setup):
        sim, network, _, core, _, remote_dir = setup
        network.send(_msg(core, remote_dir, size=24, msg_type="ack",
                          control=True))
        network.send(_msg(core, remote_dir, size=24, msg_type="ack",
                          control=True))
        assert network.stats.value("msgs.inter_host.ack") == 2
        assert network.stats.value("bytes.inter_host.ack") == 48


class TestFifoScope:
    """The FIFO clamp is per (src, dst) *node* pair, not per host pair.

    Regression for a bug where ``_last_arrival`` was keyed on
    ``(src.host, dst.host)``: all intra-host traffic shared the ``(h, h)``
    key, so disjoint mesh paths within one host serialized against each
    other (a short 1-hop message could not overtake an unrelated 7-hop
    one between different endpoints).
    """

    def _network(self, cores_per_host=8):
        sim = Simulator()
        config = SystemConfig().scaled(hosts=2, cores_per_host=cores_per_host)
        network = Network(sim, config)
        return sim, network

    def test_independent_same_host_pairs_do_not_serialize(self):
        sim, network = self._network()
        far_src, far_dst = NodeId.core(0, 0), NodeId.directory(7, 0)
        near_src, near_dst = NodeId.core(1, 0), NodeId.directory(2, 0)
        for node in (far_src, far_dst, near_src, near_dst):
            network.register(node, lambda m: None)

        slow = network.send(_msg(far_src, far_dst))     # 7 mesh hops
        fast = network.send(_msg(near_src, near_dst))   # 1 mesh hop
        assert fast < slow
        # The near pair pays exactly its own zero-load latency: no clamp
        # against the unrelated far pair's in-flight message.
        assert fast == network.topology.latency_ns(near_src, near_dst)

    def test_same_node_pair_still_fifo(self):
        sim, network = self._network()
        src, dst = NodeId.core(0, 0), NodeId.directory(7, 0)
        network.register(dst, lambda m: None)
        first = network.send(_msg(src, dst))
        second = network.send(_msg(src, dst))
        assert second >= first

    def test_disjoint_cross_host_pairs_not_clamped_to_each_other(self):
        sim, network = self._network()
        a_src, a_dst = NodeId.core(7, 0), NodeId.directory(15, 1)
        b_src, b_dst = NodeId.core(1, 0), NodeId.directory(9, 1)
        for node in (a_dst, b_dst):
            network.register(node, lambda m: None)
        # Both share host 0's egress port (which still serializes
        # departures), but the long-path arrival no longer clamps the
        # short-path pair's arrival beyond that.
        far = network.send(_msg(a_src, a_dst, size=8))
        near = network.send(_msg(b_src, b_dst, size=8))
        assert near < far


class TestTracing:
    def test_send_deliver_and_egress_queue_recorded(self):
        from repro.trace import TraceCollector

        sim = Simulator()
        config = SystemConfig().scaled(hosts=2, cores_per_host=2)
        trace = TraceCollector()
        network = Network(sim, config, trace=trace)
        src, dst = NodeId.core(0, 0), NodeId.directory(2, 1)
        network.register(dst, lambda m: None)
        network.send(_msg(src, dst, size=4096))
        network.send(_msg(src, dst, size=4096))  # queues behind msg 1
        sim.run()

        kinds = [e.kind for e in trace]
        assert kinds.count("msg_send") == 2
        assert kinds.count("msg_recv") == 2
        sends = [e for e in trace if e.kind == "msg_send"]
        assert all(e.args["scope"] == "inter_host" for e in sends)
        assert all(e.args["hops"] >= 1 for e in sends)
        queued = [e for e in trace
                  if e.kind == "stall" and e.name == "egress_queue"]
        assert len(queued) == 1  # only the second send waited
        serialization = config.interconnect.serialization_ns(4096)
        assert queued[0].dur_ns == pytest.approx(serialization)

    def test_untraced_network_records_nothing(self, setup):
        sim, network, _, core, _, remote_dir = setup
        assert network.trace is None
        network.send(_msg(core, remote_dir))
        sim.run()  # would raise if any trace call were attempted
