"""Tests for the two-level (pod) interconnect topology."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.interconnect import NodeId, Topology
from repro.interconnect.message import Message
from repro.interconnect.network import Network
from repro.sim import Simulator, StatRegistry


class TestConfig:
    def test_default_single_pod(self):
        assert SystemConfig().pods == 1

    def test_pod_assignment(self):
        config = SystemConfig().scaled(hosts=4).with_pods(2)
        assert [config.pod_of_host(h) for h in range(4)] == [0, 0, 1, 1]

    def test_indivisible_pods_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(hosts=3).with_pods(2)

    def test_zero_pods_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(hosts=4).with_pods(0)

    def test_uplink_bandwidth_defaults_to_link(self):
        config = SystemConfig().scaled(hosts=4).with_pods(2)
        assert config.pod_uplink_gbps is None  # None = link bandwidth
        config = SystemConfig().scaled(hosts=4).with_pods(2, uplink_gbps=32.0)
        assert config.pod_uplink_gbps == 32.0


class TestHops:
    def test_cross_pod_route_adds_a_full_switch_tier(self):
        """+2 hops (inter-pod spine up, remote pod switch down) — matching
        the full-tier latency charge, not a single +1."""
        flat = Topology(SystemConfig().scaled(hosts=4))
        podded = Topology(SystemConfig().scaled(hosts=4).with_pods(2))
        src = NodeId.core(0, 0)
        same_pod = NodeId.directory(1, 1)
        cross_pod = NodeId.directory(2, 2)
        assert podded.hop_count(src, same_pod) == flat.hop_count(src, same_pod)
        assert (podded.hop_count(src, cross_pod)
                == flat.hop_count(src, cross_pod) + 2)

    def test_route_exposes_pod_crossing(self):
        topology = Topology(SystemConfig().scaled(hosts=4).with_pods(2))
        src = NodeId.core(0, 0)
        assert topology.route(src, NodeId.directory(2, 2))[3]
        assert not topology.route(src, NodeId.directory(1, 1))[3]
        assert not topology.crosses_pods(src, NodeId.directory(1, 1))


# ---------------------------------------------------------------------------
# Pod uplink/downlink contention on the fabric
# ---------------------------------------------------------------------------
def _pod_fabric(pods=2, uplink_gbps=None, trace=None):
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig().scaled(hosts=4, cores_per_host=1)
    if pods > 1:
        config = config.with_pods(pods, uplink_gbps=uplink_gbps)
    network = Network(sim, config, stats, trace=trace)
    for host in range(4):
        network.register(NodeId.directory(host, host), lambda message: None)
    return network, stats


def _msg(src_host, dst_host, size=640):
    src = NodeId.core(src_host, src_host)
    dst = NodeId.directory(dst_host, dst_host)
    return Message(src=src, dst=dst, msg_type="wt_rlx", size_bytes=size,
                   control=False)


class TestPodContention:
    def test_cross_pod_send_serializes_on_uplink_and_downlink(self):
        network, stats = _pod_fabric()
        message = _msg(0, 2)
        ser = network.config.interconnect.serialization_ns(640)
        latency = network.topology.latency_ns(message.src, message.dst)
        arrival = network.send(message)
        # Host egress + pod uplink + pod downlink, each at link bandwidth.
        assert arrival == pytest.approx(3 * ser + latency)
        assert stats.value("traffic.pod_uplink.bytes") == 640
        assert stats.value("traffic.inter_pod.bytes") == 640
        assert stats.value("traffic.pod_uplink.queue_ns") == 0.0
        assert stats.value("traffic.inter_pod.queue_ns") == 0.0

    def test_slower_uplink_stretches_the_pod_tier(self):
        fast, _ = _pod_fabric()
        slow, _ = _pod_fabric(uplink_gbps=32.0)   # half the 64 GB/s link
        message = _msg(0, 2)
        pod_ser = 640 / 32.0
        assert slow.send(message) == pytest.approx(
            fast.send(_msg(0, 2)) + 2 * (pod_ser - 640 / 64.0)
        )

    def test_same_pod_uplink_is_a_shared_contended_resource(self):
        """Two hosts of one pod have separate egress ports but funnel
        through one uplink: the second message queues on it."""
        network, stats = _pod_fabric()
        ser = network.config.interconnect.serialization_ns(640)
        network.send(_msg(0, 2))
        network.send(_msg(1, 3))   # distinct egress port, same pod-0 uplink
        assert stats.value("traffic.pod_uplink.queue_ns") == \
            pytest.approx(ser)
        assert stats.value("traffic.pod_uplink.bytes") == 2 * 640

    def test_same_pod_traffic_never_touches_the_pod_tier(self):
        network, stats = _pod_fabric()
        network.send(_msg(0, 1))   # cross-host, same pod
        assert stats.value("traffic.pod_uplink.bytes") == 0.0
        assert stats.value("traffic.inter_pod.bytes") == 0.0

    def test_single_pod_config_has_no_pod_counters(self):
        network, stats = _pod_fabric(pods=1)
        network.send(_msg(0, 2))
        assert "traffic.pod_uplink.bytes" not in stats.as_dict()
        assert "traffic.inter_pod.bytes" not in stats.as_dict()

    def test_uplink_queue_time_is_traced(self):
        from repro.trace import TraceCollector
        trace = TraceCollector()
        network, _stats = _pod_fabric(trace=trace)
        ser = network.config.interconnect.serialization_ns(640)
        network.send(_msg(0, 2))
        network.send(_msg(1, 3))
        spans = [(e.name, e.ts_ns, e.ts_ns + e.dur_ns)
                 for e in trace if e.kind == "stall"]
        assert ("pod_uplink_queue", ser, 2 * ser) in spans


class TestLatency:
    def test_cross_pod_adds_extra_latency(self):
        flat = Topology(SystemConfig().scaled(hosts=4))
        podded = Topology(
            SystemConfig().scaled(hosts=4).with_pods(2, inter_pod_extra_ns=200)
        )
        src = NodeId.core(0, 0)
        same_pod = NodeId.directory(1, 1)
        cross_pod = NodeId.directory(2, 2)
        assert podded.latency_ns(src, same_pod) == \
            flat.latency_ns(src, same_pod)
        assert podded.latency_ns(src, cross_pod) == \
            flat.latency_ns(src, cross_pod) + 200

    def test_intra_host_unaffected(self):
        podded = Topology(
            SystemConfig().scaled(hosts=4, cores_per_host=2).with_pods(2)
        )
        flat = Topology(SystemConfig().scaled(hosts=4, cores_per_host=2))
        src = NodeId.core(0, 0)
        dst = NodeId.directory(1, 0)
        assert podded.latency_ns(src, dst) == flat.latency_ns(src, dst)


class TestEndToEnd:
    def test_cord_advantage_grows_across_pods(self):
        """Crossing pods raises effective latency; CORD's round-trip savings
        grow with it (the Fig. 9 trend, reproduced on topology)."""
        from repro.workloads import app, build_workload_programs
        spec = app("CR").scaled(iterations=3)

        def ratio(pods):
            config = (SystemConfig().scaled(hosts=4, cores_per_host=2)
                      .with_pods(pods))
            times = {}
            for protocol in ("cord", "so"):
                machine = Machine(config, protocol=protocol)
                times[protocol] = machine.run(
                    build_workload_programs(spec, config)
                ).time_ns
            return times["so"] / times["cord"]

        assert ratio(2) > ratio(1)

    def test_values_flow_across_pods(self):
        config = SystemConfig().scaled(hosts=4).with_pods(2)
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        data = amap.address_in_host(3, 0x1000)   # other pod
        flag = amap.address_in_host(3, 0x2000)
        producer = (ProgramBuilder()
                    .store(data, value=5, size=64)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 3: consumer})
        assert result.history.register(3, "r0") == 5
