"""Tests for the two-level (pod) interconnect topology."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.interconnect import NodeId, Topology


class TestConfig:
    def test_default_single_pod(self):
        assert SystemConfig().pods == 1

    def test_pod_assignment(self):
        config = SystemConfig().scaled(hosts=4).with_pods(2)
        assert [config.pod_of_host(h) for h in range(4)] == [0, 0, 1, 1]

    def test_indivisible_pods_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(hosts=3).with_pods(2)

    def test_zero_pods_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled(hosts=4).with_pods(0)


class TestLatency:
    def test_cross_pod_adds_extra_latency(self):
        flat = Topology(SystemConfig().scaled(hosts=4))
        podded = Topology(
            SystemConfig().scaled(hosts=4).with_pods(2, inter_pod_extra_ns=200)
        )
        src = NodeId.core(0, 0)
        same_pod = NodeId.directory(1, 1)
        cross_pod = NodeId.directory(2, 2)
        assert podded.latency_ns(src, same_pod) == \
            flat.latency_ns(src, same_pod)
        assert podded.latency_ns(src, cross_pod) == \
            flat.latency_ns(src, cross_pod) + 200

    def test_intra_host_unaffected(self):
        podded = Topology(
            SystemConfig().scaled(hosts=4, cores_per_host=2).with_pods(2)
        )
        flat = Topology(SystemConfig().scaled(hosts=4, cores_per_host=2))
        src = NodeId.core(0, 0)
        dst = NodeId.directory(1, 0)
        assert podded.latency_ns(src, dst) == flat.latency_ns(src, dst)


class TestEndToEnd:
    def test_cord_advantage_grows_across_pods(self):
        """Crossing pods raises effective latency; CORD's round-trip savings
        grow with it (the Fig. 9 trend, reproduced on topology)."""
        from repro.workloads import app, build_workload_programs
        spec = app("CR").scaled(iterations=3)

        def ratio(pods):
            config = (SystemConfig().scaled(hosts=4, cores_per_host=2)
                      .with_pods(pods))
            times = {}
            for protocol in ("cord", "so"):
                machine = Machine(config, protocol=protocol)
                times[protocol] = machine.run(
                    build_workload_programs(spec, config)
                ).time_ns
            return times["so"] / times["cord"]

        assert ratio(2) > ratio(1)

    def test_values_flow_across_pods(self):
        config = SystemConfig().scaled(hosts=4).with_pods(2)
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        data = amap.address_in_host(3, 0x1000)   # other pod
        flag = amap.address_in_host(3, 0x2000)
        producer = (ProgramBuilder()
                    .store(data, value=5, size=64)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 3: consumer})
        assert result.history.register(3, "r0") == 5
