"""Tests for message and node-id primitives."""

from repro.interconnect import Message, NodeId


class TestNodeId:
    def test_constructors(self):
        core = NodeId.core(5, 0)
        directory = NodeId.directory(9, 1)
        assert core.kind == "core" and core.index == 5 and core.host == 0
        assert directory.kind == "dir" and directory.host == 1

    def test_equality_and_hash(self):
        assert NodeId.core(1, 0) == NodeId.core(1, 0)
        assert NodeId.core(1, 0) != NodeId.directory(1, 0)
        assert len({NodeId.core(1, 0), NodeId.core(1, 0)}) == 1

    def test_ordering_is_total(self):
        nodes = [NodeId.directory(2, 1), NodeId.core(0, 0), NodeId.core(3, 1)]
        assert sorted(nodes) == sorted(nodes, key=lambda n: (n.kind, n.index,
                                                             n.host))

    def test_str(self):
        assert str(NodeId.core(7, 2)) == "core7@h2"


class TestMessage:
    def test_uids_unique(self):
        a = Message(NodeId.core(0, 0), NodeId.directory(0, 0), "t", 8)
        b = Message(NodeId.core(0, 0), NodeId.directory(0, 0), "t", 8)
        assert a.uid != b.uid

    def test_defaults(self):
        msg = Message(NodeId.core(0, 0), NodeId.directory(0, 0), "t", 8)
        assert msg.control is True
        assert msg.payload == {}

    def test_str_mentions_route(self):
        msg = Message(NodeId.core(0, 0), NodeId.directory(1, 0), "ack", 16)
        text = str(msg)
        assert "ack" in text and "core0@h0" in text and "dir1@h0" in text
