"""Tests for the CORD protocol actors."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.config import CordConfig
from tests.protocols.conftest import producer_consumer


class TestSingleDirectory:
    def test_producer_consumer_value_flows(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_relaxed_stores_unacknowledged(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(8):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
        result = machine.run({0: builder.build()})
        assert result.message_count("wt_rlx") == 8
        assert result.message_count("rel_ack") == 0
        assert result.message_count("wt_ack") == 0

    def test_release_is_acknowledged_but_core_does_not_stall(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=64)
                   .release_store(amap.address_in_host(1, 0x2000))
                   .build())
        result = machine.run({0: program})
        assert result.message_count("rel_ack") == 1
        # No processor stall (the SO comparison point of Fig. 1/Fig. 5).
        assert result.stall_ns("release_table") == 0
        assert result.time_ns < machine.config.interconnect.inter_host_latency_ns

    def test_release_blocked_until_relaxed_arrive(self, two_hosts):
        """Directory ordering: the flag commits only after the data."""
        machine = Machine(two_hosts, protocol="cord")
        programs, data, flag = producer_consumer(machine)
        result = machine.run(programs)
        events = result.history.events
        data_commit = next(e for e in events if e.addr == data and e.is_store)
        flag_commit = next(e for e in events if e.addr == flag and e.is_store)
        assert data_commit.uid < flag_commit.uid  # commit order at the LLC

    def test_cord_faster_than_so_for_producer_consumer(self, two_hosts):
        def run(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            programs, _, _ = producer_consumer(machine)
            return machine.run(programs).time_ns

        assert run("cord") < run("so")


class TestMultiDirectory:
    def test_notifications_flow_between_directories(self, two_hosts_two_slices):
        machine = Machine(two_hosts_two_slices, protocol="cord")
        amap = machine.address_map
        data = amap.address_in_host(1, 0)      # slice 0 of host 1
        flag = amap.address_in_host(1, 64)     # slice 1 of host 1
        assert amap.home_directory(data) != amap.home_directory(flag)
        producer = (ProgramBuilder()
                    .store(data, value=7, size=64)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 2: consumer})
        assert result.history.register(2, "r0") == 7
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        assert total("req_notify") == 1
        assert total("notify") == 1

    def test_fig5_control_message_count(self):
        """m relaxed stores to n-1 dirs + 1 release: 2n-1 control messages."""
        config = SystemConfig().scaled(hosts=4, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        builder = ProgramBuilder()
        m, pending_dirs = 6, 2
        for i in range(m):
            target = 1 + (i % pending_dirs)     # hosts 1..2 = dirs 1..2
            builder.store(amap.address_in_host(target, 0x1000 + 64 * i))
        builder.release_store(amap.address_in_host(3, 0x2000))  # dir 3
        result = machine.run({0: builder.build()})
        n = pending_dirs + 1
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        assert total("req_notify") == n - 1
        assert total("notify") == n - 1
        assert total("rel_ack") == 1
        # 2n - 1 control messages in total (Fig. 5).
        assert total("req_notify") + total("notify") + total("rel_ack") \
            == 2 * n - 1

    def test_release_chain_across_directories_preserves_order(
        self, two_hosts_two_slices
    ):
        """Two back-to-back releases to different directories commit in
        program order (lastPrevEp + notification chaining)."""
        machine = Machine(two_hosts_two_slices, protocol="cord")
        amap = machine.address_map
        flag_a = amap.address_in_host(1, 0)
        flag_b = amap.address_in_host(1, 64)
        producer = (ProgramBuilder()
                    .release_store(flag_a, value=1)
                    .release_store(flag_b, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag_b, 1)
                    .load(flag_a, register="r0")
                    .build())
        result = machine.run({0: producer, 2: consumer})
        assert result.history.register(2, "r0") == 1


class TestBoundedStorage:
    def test_tiny_unacked_table_stalls_but_completes(self, two_hosts):
        from dataclasses import replace
        config = replace(two_hosts, cord=CordConfig(
            proc_unacked_epoch_entries=1,
        ))
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(6):
            builder.release_store(amap.address_in_host(1, 0x1000 + 64 * i))
        builder.fence()
        result = machine.run({0: builder.build()})
        assert result.stall_ns("release_table") > 0
        assert result.message_count("rel_ack") >= 6

    def test_counter_overflow_injects_barrier_release(self, two_hosts):
        from dataclasses import replace
        config = replace(two_hosts, cord=CordConfig(counter_bits=2))
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(8):   # > 2^2 relaxed stores to one directory
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
        builder.fence()
        result = machine.run({0: builder.build()})
        assert result.message_count("wt_rlx") == 8
        # Barrier releases (empty) were injected to reset the counter.
        assert result.message_count("wt_rel") >= 2


class TestFences:
    def test_release_fence_drains_pending_directories(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=64)
                   .fence()
                   .build())
        result = machine.run({0: program})
        # The fence issued an empty Release and waited for its ack.
        assert result.message_count("wt_rel") == 1
        assert result.message_count("rel_ack") == 1
        assert result.stall_ns("fence_ack") > 0

    def test_fence_with_nothing_pending_is_free(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        result = machine.run({0: ProgramBuilder().fence().build()})
        assert result.message_count("wt_rel") == 0
        assert result.time_ns == 0.0


class TestTsoMode:
    def test_every_store_release_ordered_under_tso(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord", consistency="tso")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(4):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
        result = machine.run({0: builder.build()})
        assert result.message_count("wt_rel") == 4
        assert result.message_count("wt_rlx") == 0
        assert result.message_count("rel_ack") == 4
