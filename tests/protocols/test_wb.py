"""Tests for the write-back MESI protocol actors."""

import pytest

from repro import Machine, ProgramBuilder
from tests.protocols.conftest import producer_consumer


class TestOwnership:
    def test_first_store_fetches_ownership(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=8)
                   .fence()
                   .build())
        result = machine.run({0: program})
        assert result.message_count("getm") == 1
        assert result.message_count("data_resp") == 1

    def test_repeat_store_to_owned_line_is_free(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        amap = machine.address_map
        builder = ProgramBuilder()
        for _ in range(5):
            builder.store(amap.address_in_host(1, 0x1000), size=8)
        builder.fence()
        result = machine.run({0: builder.build()})
        assert result.message_count("getm") == 1  # reuse: one ownership fetch

    def test_multi_line_store_fetches_each_line(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=256)
                   .fence()
                   .build())
        result = machine.run({0: program})
        assert result.message_count("getm") == 4  # 256 B = 4 lines


class TestProducerConsumer:
    def test_value_flows_through_forwarding(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_flag_store_invalidates_sharers(self, two_hosts):
        """The consumer caches the flag line while polling; the producer's
        write-through flag store must invalidate it."""
        machine = Machine(two_hosts, protocol="wb")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        assert total("inv") >= 1
        assert total("inv_ack") >= 1

    def test_consumer_read_forwarded_from_owner(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        # Data stayed in the producer's cache; the consumer's GetS was
        # satisfied by an owner fetch.
        assert total("fetch") >= 1
        assert total("fetch_resp") >= 1


class TestReleaseOrdering:
    def test_release_waits_for_outstanding_ownership(self, two_hosts):
        machine = Machine(two_hosts, protocol="wb")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(8):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i), size=64)
        builder.release_store(amap.address_in_host(1, 0x8000))
        result = machine.run({0: builder.build()})
        assert result.stall_ns("wait_wb_order") > 0

    def test_eviction_writes_back_dirty_lines(self):
        from repro.config import CacheConfig, SystemConfig
        from dataclasses import replace
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        config = replace(config, l2=CacheConfig(512, 2, 4))  # 8-line cache
        machine = Machine(config, protocol="wb")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(32):   # far beyond the 8-line private cache
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i), size=64)
        builder.fence()
        result = machine.run({0: builder.build()})
        assert result.message_count("wb_data") > 0
        assert result.message_count("wb_ack") == \
            result.message_count("wb_data")


class TestTrafficShape:
    def test_wb_traffic_exceeds_wt_without_reuse(self, two_hosts):
        """Streaming producer-consumer: WB moves lines twice (fetch +
        forward) plus control; write-through CORD moves the data once."""
        def traffic(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            programs, _, _ = producer_consumer(machine, data_size=512)
            return machine.run(programs).inter_host_bytes

        assert traffic("wb") > traffic("cord")
