"""Tests for the Machine wiring and RunResult accessors."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig, available_protocols
from tests.protocols.conftest import producer_consumer


class TestConstruction:
    def test_unknown_protocol_rejected(self, two_hosts):
        with pytest.raises(ValueError):
            Machine(two_hosts, protocol="bogus")

    def test_unknown_consistency_rejected(self, two_hosts):
        with pytest.raises(ValueError):
            Machine(two_hosts, consistency="acquire-release")

    def test_one_directory_per_slice(self, two_hosts_two_slices):
        machine = Machine(two_hosts_two_slices)
        assert len(machine.directories) == 4

    def test_available_protocols_listed(self):
        names = available_protocols()
        assert "cord" in names and "so" in names and "mp" in names

    def test_duplicate_core_rejected(self, two_hosts):
        machine = Machine(two_hosts)
        program = ProgramBuilder().build()
        machine.add_core(0, program)
        with pytest.raises(ValueError):
            machine.add_core(0, program)

    def test_core_beyond_system_rejected(self, two_hosts):
        machine = Machine(two_hosts)
        with pytest.raises(ValueError):
            machine.add_core(99, ProgramBuilder().build())


class TestRunResult:
    def test_time_is_max_core_finish(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.time_ns == max(result.core_finish_ns.values())

    def test_quiesce_at_least_finish_time(self, two_hosts):
        machine = Machine(two_hosts, protocol="mp")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.quiesce_ns >= result.time_ns

    def test_traffic_split_consistent(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.inter_host_bytes == pytest.approx(
            result.inter_host_control_bytes + result.inter_host_data_bytes
        )

    def test_stall_total_sums_causes(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000))
                   .release_store(amap.address_in_host(1, 0x2000))
                   .build())
        result = machine.run({0: program})
        assert result.stall_ns() >= result.stall_ns("wait_wt_ack") > 0

    def test_cord_storage_accessors(self, two_hosts):
        machine = Machine(two_hosts, protocol="cord")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        proc = result.proc_storage_bytes(0)
        assert proc["store_counters"] > 0
        assert proc["unacked_epochs"] > 0
        directory = result.dir_storage_bytes(1)
        assert directory["store_counters"] > 0

    def test_non_cord_storage_empty(self, two_hosts):
        machine = Machine(two_hosts, protocol="mp")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.proc_storage_bytes(0) == {}


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["so", "cord", "mp", "wb", "seq8"])
    def test_identical_runs_identical_results(self, protocol):
        def run():
            config = SystemConfig().scaled(hosts=2, cores_per_host=1)
            machine = Machine(config, protocol=protocol)
            programs, _, _ = producer_consumer(machine)
            result = machine.run(programs)
            return (result.time_ns, result.inter_host_bytes,
                    result.history.register(1, "r0"))

        assert run() == run()
