"""Tests for the sequential-consistency mode (the 'other models' claim).

The paper's conclusion argues directory ordering "is generalizable for
efficiently enforcing other consistency models"; SC is the strictest, and
the canonical discriminator is store buffering (SB): the both-zero outcome
is allowed under RC and TSO but forbidden under SC.
"""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.litmus import LitmusTest, ModelChecker, ld, st

SB = LitmusTest(
    name="SB",
    locations={"X": 1, "Y": 2},
    programs=[
        [st("X", 1), ld("Y", "r1")],
        [st("Y", 1), ld("X", "r2")],
    ],
)
BOTH_ZERO = {"P0:r1": 0, "P1:r2": 0}


class TestModelChecker:
    @pytest.mark.parametrize("protocol", ["cord", "so"])
    def test_sb_both_zero_reachable_under_rc_and_tso(self, protocol):
        assert ModelChecker(SB, protocol=protocol).run().reaches(BOTH_ZERO)
        assert ModelChecker(SB, protocol=protocol,
                            tso=True).run().reaches(BOTH_ZERO)

    @pytest.mark.parametrize("protocol", ["cord", "so"])
    def test_sb_both_zero_forbidden_under_sc(self, protocol):
        result = ModelChecker(SB, protocol=protocol, sc=True).run()
        assert not result.reaches(BOTH_ZERO)
        assert result.deadlocks == 0
        # At least one SC-consistent outcome exists.
        assert result.outcomes

    def test_sc_subsumes_tso_store_ordering(self):
        from repro.litmus import poll_acq
        mp_pattern = LitmusTest(
            name="mp-rlx",
            locations={"X": 2, "Y": 1},
            programs=[
                [st("X", 1), st("Y", 1)],
                [poll_acq("Y", 1, "r1"), ld("X", "r2")],
            ],
        )
        result = ModelChecker(mp_pattern, protocol="cord", sc=True).run()
        assert not result.reaches({"P1:r1": 1, "P1:r2": 0})


class TestTimedMachine:
    def test_sc_accepted_by_machine(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord", consistency="sc")
        assert machine.consistency == "sc"

    @pytest.mark.parametrize("protocol", ["cord", "so", "wb"])
    def test_producer_consumer_under_sc(self, protocol):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol=protocol, consistency="sc")
        amap = machine.address_map
        data = amap.address_in_host(1, 0x1000)
        flag = amap.address_in_host(1, 0x2000)
        producer = (ProgramBuilder()
                    .store(data, value=3, size=8)
                    .store(flag, value=1, size=8)  # plain store suffices
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 1: consumer})
        assert result.history.register(1, "r0") == 3

    def test_sc_load_waits_for_own_stores(self):
        """A load after a store may not issue until the store commits:
        SC mode must show a store->load stall CORD's RC mode doesn't."""
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)

        def run(consistency):
            machine = Machine(config, protocol="cord",
                              consistency=consistency)
            amap = machine.address_map
            program = (ProgramBuilder()
                       .store(amap.address_in_host(1, 0x1000), value=1)
                       .load(amap.address_in_host(1, 0x2000), register="r0")
                       .build())
            return machine.run({0: program}).time_ns

        assert run("sc") > run("rc")

    def test_sc_slower_than_tso_slower_than_rc(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)

        def run(consistency):
            machine = Machine(config, protocol="cord",
                              consistency=consistency)
            amap = machine.address_map
            builder = ProgramBuilder()
            for index in range(6):
                builder.store(amap.address_in_host(1, 0x1000 + 64 * index))
                builder.load(amap.address_in_host(1, 0x8000 + 64 * index),
                             register=f"r{index}")
            return machine.run({0: builder.build()}).time_ns

        rc, tso, sc = run("rc"), run("tso"), run("sc")
        assert rc <= tso <= sc
        assert sc > rc

    def test_cord_still_beats_so_under_sc(self):
        """Directory ordering pays off under SC too: SO must serialize a
        full round trip per store, CORD pipelines its release chain."""
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)

        def run(protocol):
            machine = Machine(config, protocol=protocol, consistency="sc")
            amap = machine.address_map
            builder = ProgramBuilder()
            for index in range(12):
                builder.store(amap.address_in_host(1, 0x1000 + 64 * index))
            builder.fence()
            return machine.run({0: builder.build()}).time_ns

        assert run("cord") < run("so")
