"""Tests for the spec compiler (:mod:`repro.protocols.compile`).

Four concerns:

* **Lint gating** — ``compile_spec`` refuses structurally ambiguous
  tables.  The deliberately *reordered* CORD spec (barrier carrier not
  the final emission) pins the ``_carrier_info`` ordering-assumption fix:
  the old interpreter guessed the carrier as ``emits[-1]`` and would have
  silently mis-tagged it; the linter now rejects the spec outright.
* **Lowering** — shipped rules get the expected guard/action/delivery
  opcodes, interned message ids, and emit templates.
* **Caching** — compiled protocols are cached per name and recompiled
  when the spec object changes.
* **Differential** — ``REPRO_INTERPRETED_TABLES=1`` routes the same
  compiled tables through the original closures; both dispatch modes
  must produce byte-identical ``final_state_hash`` for every protocol.
"""

import dataclasses

import pytest

from repro.config import CXL
from repro.harness import RunSpec
from repro.harness.executor import _execute_spec
from repro.harness.experiments import default_config
from repro.protocols.compile import (
    A_CORD_RELAXED,
    A_CORD_RELEASE,
    A_MP_POSTED,
    A_SEQ_STORE,
    A_SO_STORE,
    D_NOTIFY,
    D_POSTED,
    D_REL_ACK,
    D_REQ_NOTIFY,
    D_SEQ_FLUSH,
    D_SEQ_FLUSH_ACK,
    D_SEQ_STORE,
    D_SO_ACK,
    D_WT_REL,
    D_WT_RLX,
    D_WT_STORE,
    G_CORD_RELAXED,
    G_CORD_RELEASE,
    G_SEQ_WINDOW,
    G_SO_OUTSTANDING,
    G_TRUE,
    compile_spec,
)
from repro.protocols.factory import LEGACY_ENV
from repro.protocols.spec import LintError, get_spec, lint_spec
from repro.protocols.table import INTERPRETED_ENV
from repro.workloads.micro import MicroSpec
from repro.workloads.table2 import APPLICATIONS


# ---------------------------------------------------------------------------
# Lint gating
# ---------------------------------------------------------------------------
def _with_reversed_release_emits(spec):
    """CORD with the ordered-store emissions deliberately reversed, so the
    barrier carrier (``wt_rel``) is emitted *first* instead of last."""
    rule = spec.issue[("store", True)]
    original = rule.effects

    def reversed_effects(ps, home, ordered, barrier=False):
        return list(reversed(original(ps, home, ordered, barrier=barrier)))

    issue = dict(spec.issue)
    issue[("store", True)] = dataclasses.replace(
        rule, effects=reversed_effects)
    return dataclasses.replace(spec, issue=issue)


def _with_undeclared_carrier(spec):
    """CORD with ``wt_rel``'s ``barrier_carrier`` declaration dropped."""
    messages = dict(spec.messages)
    messages["wt_rel"] = dataclasses.replace(
        messages["wt_rel"], barrier_carrier=False)
    return dataclasses.replace(spec, messages=messages)


class TestLintGating:
    def test_reordered_emits_fail_lint(self):
        bad = _with_reversed_release_emits(get_spec("cord"))
        problems = lint_spec(bad)
        assert any("ambiguous emit order" in p for p in problems), problems

    def test_reordered_emits_refuse_to_compile(self):
        bad = _with_reversed_release_emits(get_spec("cord"))
        with pytest.raises(LintError, match="ambiguous emit order"):
            compile_spec(bad)

    def test_undeclared_carrier_refuses_to_compile(self):
        bad = _with_undeclared_carrier(get_spec("cord"))
        with pytest.raises(LintError, match="exactly one"):
            compile_spec(bad)

    def test_messages_only_table_refuses_to_compile(self):
        # wb ships messages + declared actors but no issue/delivery rules.
        with pytest.raises(LintError, match="messages-only"):
            compile_spec(get_spec("wb"))

    def test_rejected_spec_does_not_poison_the_cache(self):
        spec = get_spec("cord")
        good = compile_spec(spec)
        with pytest.raises(LintError):
            compile_spec(_with_reversed_release_emits(spec))
        assert compile_spec(spec) is good


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------
class TestLowering:
    def test_message_ids_are_dense_and_consistent(self):
        for name in ("so", "cord", "mp", "seq8"):
            compiled = compile_spec(get_spec(name))
            assert [m.mid for m in compiled.messages] == list(
                range(len(compiled.messages)))
            for message in compiled.messages:
                assert compiled.msg_id[message.name] == message.mid
                assert compiled.message(message.name) is message

    def test_so_rows(self):
        c = compile_spec(get_spec("so"))
        relaxed = c.issue[("store", False)]
        ordered = c.issue[("store", True)]
        assert relaxed.guard_op == G_TRUE
        assert relaxed.action_op == A_SO_STORE
        assert ordered.guard_op == G_SO_OUTSTANDING
        assert ordered.action_op == A_SO_STORE
        assert c.barrier_carrier is None
        assert "wt_store" in c.values_carriers
        wire = lambda name: c.message(name).wire_name
        assert c.dir_wire[wire("wt_store")].op == D_WT_STORE
        assert c.core_wire[wire("so_ack")].op == D_SO_ACK

    def test_cord_rows(self):
        c = compile_spec(get_spec("cord"))
        relaxed = c.issue[("store", False)]
        release = c.issue[("store", True)]
        assert relaxed.guard_op == G_CORD_RELAXED
        assert relaxed.action_op == A_CORD_RELAXED
        assert release.guard_op == G_CORD_RELEASE
        assert release.action_op == A_CORD_RELEASE
        assert c.barrier_carrier == "wt_rel"
        # The emit template keeps the carrier last (linter-enforced).
        names = [c.messages[mid].name for mid in release.emit_mids]
        assert names[-1] == "wt_rel"
        wire = lambda name: c.message(name).wire_name
        assert c.dir_wire[wire("wt_rlx")].op == D_WT_RLX
        assert c.dir_wire[wire("wt_rel")].op == D_WT_REL
        assert c.dir_wire[wire("req_notify")].op == D_REQ_NOTIFY
        assert c.dir_wire[wire("notify")].op == D_NOTIFY
        assert c.core_wire[wire("rel_ack")].op == D_REL_ACK

    def test_mp_rows(self):
        c = compile_spec(get_spec("mp"))
        for key in (("store", False), ("store", True)):
            assert c.issue[key].guard_op == G_TRUE
            assert c.issue[key].action_op == A_MP_POSTED
        wire = lambda name: c.message(name).wire_name
        assert c.dir_wire[wire("posted")].op == D_POSTED

    def test_seq_rows(self):
        c = compile_spec(get_spec("seq8"))
        relaxed = c.issue[("store", False)]
        assert relaxed.guard_op == G_SEQ_WINDOW
        assert relaxed.action_op == A_SEQ_STORE
        names = [c.messages[mid].name for mid in relaxed.emit_mids]
        assert names == ["seq_store"]
        wire = lambda name: c.message(name).wire_name
        assert c.dir_wire[wire("seq_store")].op == D_SEQ_STORE
        assert c.dir_wire[wire("seq_flush")].op == D_SEQ_FLUSH
        assert c.core_wire[wire("seq_flush_ack")].op == D_SEQ_FLUSH_ACK

    def test_compiled_rows_mirror_their_rules(self):
        # Generic interpreter paths read the mirrored IssueRule fields off
        # the compiled row; they must stay in lockstep with the source.
        for name in ("so", "cord", "mp", "seq8"):
            spec = get_spec(name)
            compiled = compile_spec(spec)
            for key, row in compiled.issue.items():
                rule = spec.issue[key]
                assert row.rule is rule
                assert row.name == rule.name
                assert row.guard is rule.guard
                assert row.effects is rule.effects
                assert row.escape == rule.escape
                assert row.combining == rule.combining


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------
class TestCache:
    def test_cached_per_name_by_identity(self):
        spec = get_spec("cord")
        assert compile_spec(spec) is compile_spec(spec)

    def test_new_spec_object_recompiles(self):
        spec = get_spec("cord")
        first = compile_spec(spec)
        clone = dataclasses.replace(spec)
        second = compile_spec(clone)
        assert second is not first
        assert second.spec is clone
        # Recompiling the registry spec restores its cache entry.
        assert compile_spec(spec).spec is spec


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted timed differential
# ---------------------------------------------------------------------------
MICRO = MicroSpec(store_granularity=64, sync_granularity=4096, fanout=2,
                  total_bytes=32 * 1024)


def _point(protocol):
    if protocol in ("mp", "wb"):
        return RunSpec(kind="app", protocol=protocol,
                       workload=APPLICATIONS["CR"],
                       config=default_config(CXL), seed=0,
                       experiment="compile-differential")
    return RunSpec(kind="micro", protocol=protocol, workload=MICRO,
                   config=default_config(CXL), seed=0,
                   experiment="compile-differential")


class TestCompiledInterpretedDifferential:
    """Same tables, opposite dispatch: the int-coded fast paths and the
    original closures must time out to byte-identical final states."""

    @pytest.mark.parametrize(
        "protocol", ["so", "cord", "seq8", "mp", "wb", "tardis"])
    def test_final_state_hash_matches(self, protocol, monkeypatch):
        spec = _point(protocol)
        monkeypatch.delenv(LEGACY_ENV, raising=False)
        monkeypatch.delenv(INTERPRETED_ENV, raising=False)
        compiled = _execute_spec(spec).final_state_hash
        monkeypatch.setenv(INTERPRETED_ENV, "1")
        interpreted = _execute_spec(spec).final_state_hash
        assert compiled == interpreted, (
            f"{protocol}: compiled dispatch diverged from the "
            f"interpreted closures")
