"""Tests for the source-ordering (SO) protocol actors."""

import pytest

from repro import Machine, ProgramBuilder
from tests.protocols.conftest import producer_consumer


class TestBasics:
    def test_producer_consumer_value_flows(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_every_wt_store_is_acked(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(5):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i), value=i)
        builder.fence()
        result = machine.run({0: builder.build()})
        assert result.message_count("wt_store") == 5
        assert result.message_count("wt_ack") == 5

    def test_release_stalls_for_outstanding_acks(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=64)
                   .release_store(amap.address_in_host(1, 0x2000))
                   .build())
        result = machine.run({0: program})
        # The release waited roughly one interconnect round trip.
        assert result.stall_ns("wait_wt_ack") > \
            machine.config.interconnect.inter_host_latency_ns

    def test_relaxed_stores_do_not_stall(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(10):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
        result = machine.run({0: builder.build()})
        assert result.stall_ns("wait_wt_ack") == 0

    def test_consecutive_releases_serialize(self, two_hosts):
        machine = Machine(two_hosts, protocol="so")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .release_store(amap.address_in_host(1, 0x1000))
                   .release_store(amap.address_in_host(1, 0x2000))
                   .build())
        result = machine.run({0: program})
        # The second release waits for the first release's ack.
        assert result.stall_ns("wait_wt_ack") > 0


class TestTsoMode:
    def test_tso_orders_every_store(self, two_hosts):
        machine = Machine(two_hosts, protocol="so", consistency="tso")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(4):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
        result = machine.run({0: builder.build()})
        # Stores 2..4 each waited for the previous ack.
        round_trip = 2 * machine.config.interconnect.inter_host_latency_ns
        assert result.stall_ns("wait_wt_ack") >= 3 * round_trip * 0.9

    def test_tso_slower_than_rc(self, two_hosts):
        def run(consistency):
            machine = Machine(two_hosts, protocol="so",
                              consistency=consistency)
            amap = machine.address_map
            builder = ProgramBuilder()
            for i in range(6):
                builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
            builder.fence()
            return machine.run({0: builder.build()}).time_ns

        assert run("tso") > run("rc")
