"""Tests for write-through atomics (RMWs at the home LLC) and spinlocks."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.consistency import AtomicOp, MemOp, Ordering

PROTOCOLS = ["cord", "so", "mp", "wb", "seq16"]


class TestAtomicOp:
    def test_exchange(self):
        assert AtomicOp.EXCHANGE.apply(5, 9, None) == 9

    def test_fetch_add(self):
        assert AtomicOp.FETCH_ADD.apply(5, 3, None) == 8

    def test_cas_success_and_failure(self):
        assert AtomicOp.COMPARE_SWAP.apply(5, 9, 5) == 9
        assert AtomicOp.COMPARE_SWAP.apply(5, 9, 4) == 5

    def test_constructors(self):
        op = MemOp.fetch_add(0x100, 2, "r0")
        assert op.meta["atomic"] is AtomicOp.FETCH_ADD
        op = MemOp.compare_swap(0x100, compare=0, operand=1)
        assert op.meta["compare"] == 0


def _counter_value(machine, addr):
    home = machine.address_map.home_directory(addr)
    return machine.directories[home.index].values.get(addr, 0)


class TestAtomicity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_concurrent_fetch_adds_never_lose_updates(self, protocol):
        config = SystemConfig().scaled(hosts=3, cores_per_host=1)
        machine = Machine(config, protocol=protocol)
        counter = machine.address_map.address_in_host(2, 0x1000)
        programs = {}
        for core in (0, 1):
            builder = ProgramBuilder()
            for _ in range(10):
                builder.fetch_add(counter, 1, register="last")
            programs[core] = builder.build()
        machine.run(programs)
        assert _counter_value(machine, counter) == 20

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_old_value_returned(self, protocol):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol=protocol)
        addr = machine.address_map.address_in_host(1, 0x1000)
        program = (ProgramBuilder()
                   .store(addr, value=7, size=8)
                   .fence()
                   .fetch_add(addr, 5, register="old")
                   .build())
        result = machine.run({0: program})
        assert result.history.register(0, "old") == 7
        assert _counter_value(machine, addr) == 12


class TestReleaseOrderedAtomics:
    @pytest.mark.parametrize("protocol", ["cord", "so"])
    def test_release_rmw_publishes_prior_stores(self, protocol):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol=protocol)
        amap = machine.address_map
        data = amap.address_in_host(1, 0x1000)
        flag = amap.address_in_host(1, 0x2000)
        producer = (ProgramBuilder()
                    .store(data, value=42, size=64)
                    .fetch_add(flag, 1, ordering=Ordering.RELEASE)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 1: consumer})
        assert result.history.register(1, "r0") == 42

    def test_cord_release_atomic_uses_release_machinery(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=64)
                   .fetch_add(amap.address_in_host(1, 0x2000), 1,
                              ordering=Ordering.RELEASE)
                   .build())
        result = machine.run({0: program})
        # The RMW travelled as a Release store and was acknowledged.
        assert result.message_count("wt_rel") == 1
        assert result.message_count("rel_ack") == 1


class TestSpinlock:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_mutual_exclusion(self, protocol):
        """Each worker writes its id into a shared slot inside the critical
        section and reads it back; with working mutual exclusion it always
        reads its own id."""
        config = SystemConfig().scaled(hosts=3, cores_per_host=1)
        machine = Machine(config, protocol=protocol)
        amap = machine.address_map
        lock = amap.address_in_host(2, 0x2000)
        slot = amap.address_in_host(2, 0x3000)
        programs = {}
        for core, my_id in ((0, 101), (1, 202)):
            builder = ProgramBuilder(f"worker{core}")
            for _ in range(5):
                builder.lock(lock)
                builder.store(slot, value=my_id, size=8)
                builder.compute(35.0)
                builder.load(slot, register="mine")
                builder.unlock(lock)
            programs[core] = builder.build()
        result = machine.run(programs)
        assert result.history.register(0, "mine") == 101
        assert result.history.register(1, "mine") == 202

    def test_lock_is_eventually_acquired(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        lock = machine.address_map.address_in_host(1, 0x2000)
        program = (ProgramBuilder().lock(lock).unlock(lock).build())
        result = machine.run({0: program})
        assert result.time_ns > 0


class TestWbAtomics:
    def test_atomic_reclaims_owned_line(self):
        """A far atomic on a line another core owns must fetch it back."""
        config = SystemConfig().scaled(hosts=2, cores_per_host=2)
        machine = Machine(config, protocol="wb")
        amap = machine.address_map
        addr = amap.address_in_host(1, 0x1000)
        owner = (ProgramBuilder()
                 .store(addr, value=5, size=8)
                 .fence()
                 .release_store(amap.address_in_host(1, 0x2000), value=1)
                 .build())
        rmw = (ProgramBuilder()
               .load_until(amap.address_in_host(1, 0x2000), 1)
               .fetch_add(addr, 1, register="old")
               .build())
        result = machine.run({0: owner, 2: rmw})
        assert result.history.register(2, "old") == 5
