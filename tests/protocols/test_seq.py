"""Tests for the SEQ-k monolithic sequence-number baseline."""

import pytest

from repro import Machine, ProgramBuilder
from repro.protocols import make_seq_protocol
from tests.protocols.conftest import producer_consumer


class TestOrdering:
    def test_producer_consumer_value_flows(self, two_hosts):
        machine = Machine(two_hosts, protocol="seq8")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_release_commits_after_all_prior_seqs(self, two_hosts):
        machine = Machine(two_hosts, protocol="seq16")
        programs, data, flag = producer_consumer(machine)
        result = machine.run(programs)
        events = result.history.events
        data_commit = next(e for e in events if e.addr == data and e.is_store)
        flag_commit = next(e for e in events if e.addr == flag and e.is_store)
        assert data_commit.uid < flag_commit.uid


class TestOverflow:
    def test_seq8_flushes_on_wrap(self, two_hosts):
        machine = Machine(two_hosts, protocol="seq8")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(300):  # > 2^8 stores forces at least one flush
            builder.store(amap.address_in_host(1, 0x1000 + 64 * (i % 64)))
        result = machine.run({0: builder.build()})
        assert result.message_count("seq_flush") >= 1
        assert result.stall_ns("seq_overflow") > 0

    def test_seq40_never_flushes(self, two_hosts):
        machine = Machine(two_hosts, protocol="seq40")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(300):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * (i % 64)))
        result = machine.run({0: builder.build()})
        assert result.message_count("seq_flush") == 0
        assert result.stall_ns("seq_overflow") == 0

    def test_seq40_traffic_exceeds_seq8(self, two_hosts):
        def traffic(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            amap = machine.address_map
            builder = ProgramBuilder()
            for i in range(64):
                builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
            return machine.run({0: builder.build()}).inter_host_bytes

        # 40-bit sequence numbers inflate every store beyond the reserved
        # header bits; 8-bit ones ride free.
        assert traffic("seq40") > traffic("seq8")


class TestFactory:
    def test_make_seq_protocol_sets_bits(self):
        port_cls, _ = make_seq_protocol(12)
        assert port_cls.SEQ_BITS == 12

    def test_invalid_bits_rejected(self):
        from repro.protocols import protocol_classes
        with pytest.raises(ValueError):
            protocol_classes("seq0")
        with pytest.raises(ValueError):
            protocol_classes("seq999")
