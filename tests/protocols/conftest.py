"""Shared fixtures for protocol tests."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig


@pytest.fixture
def two_hosts():
    """2 hosts x 1 core: producer on host 0, consumer on host 1."""
    return SystemConfig().scaled(hosts=2, cores_per_host=1)


@pytest.fixture
def two_hosts_two_slices():
    """2 hosts x 2 cores (2 LLC slices per host)."""
    return SystemConfig().scaled(hosts=2, cores_per_host=2)


def producer_consumer(machine, data_value=42, data_size=64):
    """Build the canonical producer-consumer pair on a 2-host machine."""
    amap = machine.address_map
    data = amap.address_in_host(1, 0x8000)
    flag = amap.address_in_host(1, 0x4000)
    producer = (ProgramBuilder("producer")
                .store(data, value=data_value, size=data_size)
                .release_store(flag, value=1)
                .build())
    consumer = (ProgramBuilder("consumer")
                .load_until(flag, 1)
                .load(data, register="r0")
                .build())
    consumer_core = machine.config.cores_per_host  # first core of host 1
    return {0: producer, consumer_core: consumer}, data, flag
