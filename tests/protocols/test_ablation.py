"""Tests for the cord-nonotify ablation protocol."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from tests.protocols.conftest import producer_consumer


class TestCordNoNotify:
    def test_registered_in_factory(self):
        from repro.protocols import protocol_classes
        port_cls, dir_cls = protocol_classes("cord-nonotify")
        assert port_cls.__name__ == "CordNoNotifyCorePort"

    def test_single_directory_behaviour_matches_cord(self, two_hosts):
        def run(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            programs, _, _ = producer_consumer(machine)
            result = machine.run(programs)
            return result.time_ns, result.history.register(1, "r0")

        assert run("cord-nonotify") == run("cord")

    def test_cross_directory_release_drains_instead_of_notifying(
        self, two_hosts_two_slices
    ):
        machine = Machine(two_hosts_two_slices, protocol="cord-nonotify")
        amap = machine.address_map
        data = amap.address_in_host(1, 0)     # slice 0
        flag = amap.address_in_host(1, 64)    # slice 1
        producer = (ProgramBuilder()
                    .store(data, value=7, size=64)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 2: consumer})
        assert result.history.register(2, "r0") == 7
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        assert total("req_notify") == 0      # the mechanism is ablated
        assert result.stall_ns("cross_dir_drain") > 0

    def test_slower_than_cord_at_fanout(self):
        config = SystemConfig().scaled(hosts=4, cores_per_host=1)

        def run(protocol):
            machine = Machine(config, protocol=protocol)
            amap = machine.address_map
            builder = ProgramBuilder()
            for i in range(3):
                for target in (1, 2):
                    builder.store(amap.address_in_host(target, 0x1000 + 64 * i),
                                  size=64)
                builder.release_store(amap.address_in_host(3, 0x2000),
                                      value=i + 1)
            builder.fence()
            return machine.run({0: builder.build()}).time_ns

        assert run("cord-nonotify") > run("cord")
