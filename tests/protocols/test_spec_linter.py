"""Structural lint of the shipped transition tables.

Folded into the default pytest run so a malformed table (a message with
no ordering class, an issue row with a dangling escape, a delivery rule
for an undeclared message, an emitted field the symmetry permutation
would be blind to) fails CI before any equivalence suite runs.
"""

import pytest

from repro.protocols.spec import (
    FifoClass,
    ample_kinds,
    fifo_class_for,
    forwarding_kinds,
    get_spec,
    lint_spec,
    spec_protocols,
)

ALL_TABLES = ("so", "cord", "mp", "seq2", "seq8", "seq40", "tardis")


class TestLinter:
    @pytest.mark.parametrize("name", ALL_TABLES)
    def test_shipped_tables_are_clean(self, name):
        assert lint_spec(get_spec(name)) == []

    def test_rule_complete_set_matches_factory_default(self):
        assert spec_protocols() == ("so", "cord", "mp", "seq<k>", "tardis")

    @pytest.mark.parametrize("name", ALL_TABLES)
    def test_every_message_names_a_fifo_class(self, name):
        spec = get_spec(name)
        for mspec in spec.messages.values():
            assert isinstance(mspec.fifo, FifoClass)


class TestDerivedCheckerMetadata:
    """The checker's FIFO/POR sets come from the tables, not hand lists."""

    def test_store_fifo_is_per_location(self):
        for name in ("so", "cord", "seq8"):
            spec = get_spec(name)
            for mspec in spec.messages.values():
                if mspec.forwards_store:
                    assert mspec.fifo is FifoClass.PER_LOCATION, (
                        f"{name}:{mspec.name}")

    def test_mp_posted_and_atomics_are_per_pair(self):
        assert fifo_class_for("posted", "mp") is FifoClass.PER_PAIR
        assert fifo_class_for("atomic", "mp") is FifoClass.PER_PAIR

    def test_atomics_elsewhere_ride_the_store_channel(self):
        assert fifo_class_for("atomic", "so") is FifoClass.PER_LOCATION
        assert fifo_class_for("atomic", "cord") is FifoClass.PER_LOCATION

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            fifo_class_for("no_such_message")

    def test_ample_and_forwarding_sets(self):
        assert ample_kinds() == frozenset(
            {"so_ack", "notify", "atomic_resp"})
        assert forwarding_kinds() == frozenset(
            {"wt_rlx", "wt_rel", "wt_store", "seq_store", "posted",
             "tardis_store"})
