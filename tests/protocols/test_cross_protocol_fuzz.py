"""Property-based cross-protocol fuzzing on the timed machine.

Random (but well-synchronized) producer-consumer programs must, under every
protocol: run to completion (liveness), deliver the same synchronized
values (they are fully determined by the program), and produce RC-clean
histories for the ordered protocols.  This is the integration-level
complement to the per-module property tests and the untimed model checker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, ProgramBuilder, SystemConfig, check_rc

PROTOCOLS = ("cord", "so", "mp", "wb", "seq16")


@st.composite
def scenarios(draw):
    return {
        "stores": draw(st.integers(min_value=1, max_value=12)),
        "store_size": draw(st.sampled_from([8, 64, 256])),
        "iterations": draw(st.integers(min_value=1, max_value=3)),
        "use_atomic_flag": draw(st.booleans()),
        "wc_lines": draw(st.sampled_from([0, 4])),
    }


def _build(machine, scenario):
    amap = machine.address_map
    data = amap.address_in_host(1, 0x100000)
    flag = amap.address_in_host(1, 0x4000)
    producer = ProgramBuilder("producer")
    consumer = ProgramBuilder("consumer")
    stores = scenario["stores"]
    for iteration in range(scenario["iterations"]):
        base_value = iteration * stores
        for index in range(stores):
            producer.store(
                data + index * scenario["store_size"],
                value=base_value + index + 1,
                size=scenario["store_size"],
            )
        if scenario["use_atomic_flag"]:
            from repro.consistency import Ordering
            producer.fetch_add(flag, 1, ordering=Ordering.RELEASE)
        else:
            producer.release_store(flag, value=iteration + 1)
        consumer.load_until(flag, iteration + 1)
        consumer.load(data, register=f"first{iteration}")
        consumer.load(
            data + (stores - 1) * scenario["store_size"],
            register=f"last{iteration}",
        )
    return {0: producer.build(), 1: consumer.build()}


class TestCrossProtocol:
    @settings(max_examples=15, deadline=None)
    @given(scenario=scenarios())
    def test_all_protocols_agree_on_synchronized_values(self, scenario):
        expected = None
        for protocol in PROTOCOLS:
            config = SystemConfig().scaled(hosts=2, cores_per_host=1)
            if scenario["wc_lines"]:
                config = config.with_write_combining(scenario["wc_lines"])
            machine = Machine(config, protocol=protocol)
            result = machine.run(_build(machine, scenario))
            registers = {
                name: value
                for (core, name), value in result.history.registers.items()
                if core == 1
            }
            # Only the final iteration's reads are fully determined: the
            # producer may run ahead (no backpressure), so earlier
            # iterations can legitimately observe later data.
            last = scenario["iterations"] - 1
            stores = scenario["stores"]
            final = (registers[f"first{last}"], registers[f"last{last}"])
            assert final == (last * stores + 1, (last + 1) * stores), protocol
            if expected is None:
                expected = final
            else:
                assert final == expected, protocol

    @settings(max_examples=10, deadline=None)
    @given(scenario=scenarios())
    def test_ordered_protocol_histories_pass_rc(self, scenario):
        for protocol in ("cord", "so"):
            config = SystemConfig().scaled(hosts=2, cores_per_host=1)
            machine = Machine(config, protocol=protocol)
            result = machine.run(_build(machine, scenario))
            assert check_rc(result.history) == [], protocol

    @settings(max_examples=10, deadline=None)
    @given(scenario=scenarios())
    def test_mp_never_slower_and_cord_never_slower_than_so(self, scenario):
        times = {}
        for protocol in ("mp", "cord", "so"):
            config = SystemConfig().scaled(hosts=2, cores_per_host=1)
            machine = Machine(config, protocol=protocol)
            times[protocol] = machine.run(_build(machine, scenario)).time_ns
        assert times["mp"] <= times["cord"] + 1e-6
        assert times["cord"] <= times["so"] + 1e-6
