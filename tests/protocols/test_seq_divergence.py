"""Regressions for the SEQ timed/checker divergences the audit found.

Two real bugs lived in the legacy timed SEQ actors (the untimed checker
model always had the correct behaviour):

* **Per-directory commit counts.**  Release-like ``seq_store`` gating
  compared the store's sequence number against the count of commits *at
  its own directory slice* — but prior stores fan out across slices, so
  any producer that touched two slices before a Release deadlocked (the
  release's home slice could never observe the other slice's commits).
  Both actor stacks now gate on :class:`repro.protocols.seq.SeqCommitBoard`,
  the machine-global counts the checker always summed.

* **Fence-less fences.**  The legacy port inherited the base no-op
  ``drain``, so a release fence ordered nothing; the checker has always
  blocked fences until the sequence stream drained.  Release fences now
  flush (acquire fences stay free — SEQ tracks nothing they order).

Both fixes apply to the legacy actors and the table interpreter alike;
the tests run under each via the ``REPRO_LEGACY_PROTOCOLS`` toggle.
"""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.consistency.ops import Ordering
from repro.protocols.factory import LEGACY_ENV


@pytest.fixture(params=["table", "legacy"])
def actors(request, monkeypatch):
    """Run each test once per actor stack."""
    if request.param == "legacy":
        monkeypatch.setenv(LEGACY_ENV, "1")
    else:
        monkeypatch.delenv(LEGACY_ENV, raising=False)
    return request.param


def _addresses_on_distinct_slices(machine, host):
    """Two data addresses in ``host`` homed on different directory slices."""
    amap = machine.address_map
    by_dir = {}
    for offset in range(0x1000, 0x10000, 64):
        addr = amap.address_in_host(host, offset)
        by_dir.setdefault(amap.home_directory(addr).index, addr)
        if len(by_dir) == 2:
            return sorted(by_dir.values())
    pytest.skip("config folds every address onto one slice")


class TestCrossSliceRelease:
    def test_release_after_stores_to_two_slices_completes(self, actors):
        # Pre-fix this deadlocked: the Release's home slice waited forever
        # for a commit count only the *other* slice was incrementing.
        config = SystemConfig().scaled(hosts=2, cores_per_host=2)
        machine = Machine(config, protocol="seq8")
        amap = machine.address_map
        data_a, data_b = _addresses_on_distinct_slices(machine, 1)
        flag = amap.address_in_host(1, 0x400)
        producer = (ProgramBuilder("producer")
                    .store(data_a, value=7)
                    .store(data_b, value=9)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder("consumer")
                    .load_until(flag, 1)
                    .load(data_a, register="r0")
                    .load(data_b, register="r1")
                    .build())
        consumer_core = config.cores_per_host
        result = machine.run({0: producer, consumer_core: consumer})
        assert result.history.register(consumer_core, "r0") == 7
        assert result.history.register(consumer_core, "r1") == 9

    def test_release_commits_after_both_slices(self, actors):
        config = SystemConfig().scaled(hosts=2, cores_per_host=2)
        machine = Machine(config, protocol="seq8")
        data_a, data_b = _addresses_on_distinct_slices(machine, 1)
        flag = machine.address_map.address_in_host(1, 0x400)
        producer = (ProgramBuilder("producer")
                    .store(data_a, value=7)
                    .store(data_b, value=9)
                    .release_store(flag, value=1)
                    .build())
        result = machine.run({0: producer})
        events = result.history.events
        flag_commit = next(e for e in events if e.addr == flag and e.is_store)
        for data in (data_a, data_b):
            commit = next(e for e in events if e.addr == data and e.is_store)
            assert commit.uid < flag_commit.uid


class TestReleaseFenceDrains:
    def test_release_fence_flushes_outstanding_seqs(self, actors, two_hosts):
        machine = Machine(two_hosts, protocol="seq8")
        addr = machine.address_map.address_in_host(1, 0x1000)
        program = (ProgramBuilder("fencer")
                   .store(addr, value=1)
                   .fence(Ordering.RELEASE)
                   .build())
        result = machine.run({0: program})
        # Pre-fix: no flush traffic, no stall — the fence was a no-op.
        assert result.message_count("seq_flush") >= 1
        assert result.stall_ns("seq_drain") > 0

    def test_acquire_fence_stays_free(self, actors, two_hosts):
        machine = Machine(two_hosts, protocol="seq8")
        addr = machine.address_map.address_in_host(1, 0x1000)
        program = (ProgramBuilder("fencer")
                   .store(addr, value=1)
                   .fence(Ordering.ACQUIRE)
                   .build())
        result = machine.run({0: program})
        assert result.stall_ns("seq_drain") == 0

    def test_drained_fence_sends_nothing(self, actors, two_hosts):
        machine = Machine(two_hosts, protocol="seq8")
        program = ProgramBuilder("fencer").fence(Ordering.RELEASE).build()
        result = machine.run({0: program})
        assert result.message_count("seq_flush") == 0
