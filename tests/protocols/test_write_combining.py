"""Tests for the write-combining buffer (§2.1) and its protocol wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, ProgramBuilder, SystemConfig
from repro.consistency.ops import MemOp
from repro.protocols.write_combining import WriteCombiningBuffer


class TestBufferUnit:
    def test_disabled_passes_through(self):
        buffer = WriteCombiningBuffer(0)
        out = buffer.add(MemOp.store(0x100, value=1, size=8), 0)
        assert len(out) == 1
        assert out[0].addr == 0x100

    def test_same_line_stores_merge(self):
        buffer = WriteCombiningBuffer(4)
        assert buffer.add(MemOp.store(0x100, value=1, size=8), 0) == []
        assert buffer.add(MemOp.store(0x108, value=2, size=8), 1) == []
        flushed = buffer.flush()
        assert len(flushed) == 1
        assert flushed[0].addr == 0x100
        assert flushed[0].size == 16
        assert flushed[0].merged == 2
        assert flushed[0].values == {0x100: 1, 0x108: 2}

    def test_different_lines_occupy_entries(self):
        buffer = WriteCombiningBuffer(4)
        buffer.add(MemOp.store(0x100, value=1, size=8), 0)
        buffer.add(MemOp.store(0x140, value=2, size=8), 1)
        assert buffer.occupancy == 2

    def test_capacity_evicts_oldest(self):
        buffer = WriteCombiningBuffer(2)
        buffer.add(MemOp.store(0x000, value=1, size=8), 0)
        buffer.add(MemOp.store(0x040, value=2, size=8), 1)
        evicted = buffer.add(MemOp.store(0x080, value=3, size=8), 2)
        assert len(evicted) == 1
        assert evicted[0].addr == 0x000

    def test_line_sized_store_bypasses(self):
        buffer = WriteCombiningBuffer(4)
        out = buffer.add(MemOp.store(0x100, value=1, size=64), 0)
        assert len(out) == 1
        assert buffer.occupancy == 0

    def test_line_sized_store_flushes_open_entry_first(self):
        buffer = WriteCombiningBuffer(4)
        buffer.add(MemOp.store(0x100, value=1, size=8), 0)
        out = buffer.add(MemOp.store(0x100, value=2, size=64), 1)
        assert len(out) == 2   # the open 8B entry, then the full line

    def test_flush_line_only_touches_that_line(self):
        buffer = WriteCombiningBuffer(4)
        buffer.add(MemOp.store(0x100, value=1, size=8), 0)
        buffer.add(MemOp.store(0x140, value=2, size=8), 1)
        assert len(buffer.flush_line(0x100)) == 1
        assert buffer.occupancy == 1

    def test_combining_ratio(self):
        buffer = WriteCombiningBuffer(4)
        for offset in range(0, 64, 8):
            buffer.add(MemOp.store(0x100 + offset, value=1, size=8), 0)
        buffer.flush()
        assert buffer.combining_ratio == pytest.approx(8.0)

    def test_negative_lines_rejected(self):
        with pytest.raises(ValueError):
            WriteCombiningBuffer(-1)

    def test_straddling_store_flushes_every_overlapped_line(self):
        """Regression: a pass-through store overlapping several lines must
        flush the buffered entry on *every* one of them first — an older
        entry on the second line emitted afterwards would overwrite the
        overlap with stale bytes at the directory (per-pair FIFO preserves
        the wrong order faithfully)."""
        buffer = WriteCombiningBuffer(4)
        buffer.add(MemOp.store(0x148, value=7, size=8), 0)   # line 0x140
        out = buffer.add(MemOp.store(0x120, value=9, size=64), 1)
        # The stale 0x140-line entry must come out *before* the straddler.
        assert [w.addr for w in out] == [0x148, 0x120]
        assert buffer.occupancy == 0

    def test_straddling_store_flushes_middle_lines_too(self):
        buffer = WriteCombiningBuffer(4)
        buffer.add(MemOp.store(0x140, value=1, size=8), 0)   # middle line
        buffer.add(MemOp.store(0x180, value=2, size=8), 1)   # last line
        out = buffer.add(MemOp.store(0x130, value=3, size=128), 2)
        assert [w.addr for w in out] == [0x140, 0x180, 0x130]

    @settings(max_examples=60, deadline=None)
    @given(offsets=st.lists(
        st.integers(min_value=0, max_value=1023), min_size=1, max_size=80,
    ))
    def test_every_store_eventually_emitted_exactly_once(self, offsets):
        buffer = WriteCombiningBuffer(3)
        emitted = []
        for index, offset in enumerate(offsets):
            emitted.extend(buffer.add(
                MemOp.store(offset * 8, value=index + 1, size=8), index
            ))
        emitted.extend(buffer.flush())
        assert sum(w.merged for w in emitted) == len(offsets)
        # The last value written to each address survives.
        final = {}
        for write in emitted:
            final.update(write.values)
        expected = {}
        for index, offset in enumerate(offsets):
            expected[offset * 8] = index + 1
        assert final == expected


class TestProtocolIntegration:
    @pytest.fixture
    def wc_config(self):
        return (SystemConfig().scaled(hosts=2, cores_per_host=1)
                .with_write_combining(4))

    def _producer_consumer(self, machine, stores=32):
        amap = machine.address_map
        data = amap.address_in_host(1, 0x1000)
        flag = amap.address_in_host(1, 0x2000)
        builder = ProgramBuilder()
        for index in range(stores):
            builder.store(data + index * 8, value=index + 1, size=8)
        builder.release_store(flag, value=1)
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="first")
                    .load(data + (stores - 1) * 8, register="last")
                    .build())
        return {0: builder.build(), 1: consumer}, stores

    @pytest.mark.parametrize("protocol", ["cord", "so", "mp"])
    def test_combining_reduces_messages_and_traffic(self, wc_config, protocol):
        def run(config):
            machine = Machine(config, protocol=protocol)
            programs, stores = self._producer_consumer(machine)
            result = machine.run(programs)
            messages = (result.message_count("wt_rlx")
                        + result.message_count("wt_store"))
            return messages, result.inter_host_bytes, result

        base_cfg = SystemConfig().scaled(hosts=2, cores_per_host=1)
        plain_msgs, plain_bytes, _ = run(base_cfg)
        wc_msgs, wc_bytes, result = run(wc_config)
        assert wc_msgs < plain_msgs / 4
        assert wc_bytes < plain_bytes
        # Values still correct after coalescing.
        assert result.history.register(1, "first") == 1
        assert result.history.register(1, "last") == 32

    def test_release_flushes_before_publishing(self, wc_config):
        """The consumer must never observe the flag before combined data."""
        machine = Machine(wc_config, protocol="cord")
        programs, stores = self._producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "last") == stores

    def test_read_own_write_flushes_line(self, wc_config):
        machine = Machine(wc_config, protocol="cord")
        addr = machine.address_map.address_in_host(1, 0x1000)
        program = (ProgramBuilder()
                   .store(addr, value=9, size=8)
                   .load(addr, register="r0")
                   .build())
        result = machine.run({0: program})
        assert result.history.register(0, "r0") == 9

    def test_atomic_flushes_buffer(self, wc_config):
        machine = Machine(wc_config, protocol="cord")
        addr = machine.address_map.address_in_host(1, 0x1000)
        program = (ProgramBuilder()
                   .store(addr, value=5, size=8)
                   .fetch_add(addr, 1, register="old")
                   .build())
        result = machine.run({0: program})
        assert result.history.register(0, "old") == 5

    def test_disabled_under_tso(self):
        config = (SystemConfig().scaled(hosts=2, cores_per_host=1)
                  .with_write_combining(4))
        machine = Machine(config, protocol="cord", consistency="tso")
        assert not machine.cores or True  # port created lazily at run
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), value=1, size=8)
                   .build())
        machine.run({0: program})
        assert not machine.cores[0].port.wc.enabled
