"""Tests for the shared protocol infrastructure (CorePort/DirectoryNode)."""

import pytest

from repro import Machine, ProgramBuilder, SystemConfig
from repro.interconnect import Message, NodeId


class TestDirectoryDispatch:
    def test_unknown_message_type_raises(self, ):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        directory = machine.directories[1]
        machine.network.register(NodeId.core(0, 0), lambda m: None)
        machine.network.send(Message(
            src=NodeId.core(0, 0), dst=directory.node_id,
            msg_type="bogus", size_bytes=8,
        ))
        with pytest.raises(RuntimeError, match="no handler"):
            machine.sim.run()

    def test_service_latency_applied(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="mp")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), value=1)
                   .build())
        result = machine.run({0: program})
        # Quiesce includes network latency + the slice's service delay.
        zero_load = machine.network.topology.latency_ns(
            NodeId.core(0, 0), amap.home_directory(
                amap.address_in_host(1, 0x1000))
        )
        assert result.quiesce_ns > zero_load

    def test_load_of_unwritten_address_returns_zero(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        addr = machine.address_map.address_in_host(1, 0x9000)
        program = ProgramBuilder().load(addr, register="r0").build()
        result = machine.run({0: program})
        assert result.history.register(0, "r0") == 0

    def test_stall_accounting_only_positive_durations(self):
        config = SystemConfig().scaled(hosts=2, cores_per_host=1)
        machine = Machine(config, protocol="cord")
        program = ProgramBuilder().build()
        machine.run({0: program})
        core = machine.cores[0]
        core.port.stall("test_cause", 0.0)
        assert machine.stats.value("stall.test_cause") == 0.0
        core.port.stall("test_cause", 5.0)
        assert machine.stats.value("stall.test_cause") == 5.0


class TestWriteCombiningDefaultRejection:
    def test_wb_port_rejects_wc_emission(self):
        """WB keeps its own store path; the base emission hook must refuse."""
        config = (SystemConfig().scaled(hosts=2, cores_per_host=1)
                  .with_write_combining(4))
        machine = Machine(config, protocol="wb")
        machine.add_core(0, ProgramBuilder().build())
        port = machine.cores[0].port
        from repro.protocols.write_combining import CombinedWrite
        with pytest.raises(NotImplementedError):
            list(port._emit_relaxed(
                CombinedWrite(0, 8, 1, 0, 1, values={0: 1}), 0
            ))
