"""Factory-time validation and the legacy/table toggle.

Unknown protocol names and uncheckable combinations must fail at the
factory with errors that name the valid choices — not as attribute
errors deep inside actor construction or state exploration.
"""

import pytest

from repro import Machine, SystemConfig
from repro.litmus.dsl import LitmusTest, ld, st
from repro.litmus.model_checker import ModelChecker
from repro.protocols.factory import (
    LEGACY_ENV,
    available_protocols,
    checkable_protocols,
    legacy_protocols_enabled,
    protocol_classes,
    validate_checkable_protocol,
)

SMOKE = LitmusTest(
    name="smoke",
    locations={"x": 0},
    programs=[[st("x", 1)], [ld("x", "r0")]],
)


class TestFactoryValidation:
    def test_unknown_name_names_the_choices(self):
        with pytest.raises(ValueError) as err:
            protocol_classes("mesi")
        message = str(err.value)
        assert "mesi" in message
        for name in available_protocols():
            assert name in message

    def test_machine_rejects_unknown_protocol_at_construction(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            Machine(SystemConfig().scaled(hosts=2, cores_per_host=1),
                    protocol="mesi")

    @pytest.mark.parametrize("name", ["seq0", "seq65", "seq999"])
    def test_seq_width_bounds(self, name):
        with pytest.raises(ValueError, match="bit-width"):
            protocol_classes(name)

    @pytest.mark.parametrize("name", ["wb", "cord-nonotify"])
    def test_timed_only_protocols_rejected_by_checker(self, name):
        with pytest.raises(ValueError, match="timed-only"):
            ModelChecker(SMOKE, name)

    def test_unknown_protocol_rejected_by_checker(self):
        with pytest.raises(ValueError, match="unknown"):
            ModelChecker(SMOKE, "mesi")

    def test_checkable_set(self):
        assert checkable_protocols() == ("so", "cord", "mp", "seq<k>",
                                         "tardis")
        for name in ("so", "cord", "mp", "seq2", "seq40", "tardis"):
            validate_checkable_protocol(name)  # must not raise


class TestLegacyToggle:
    def test_env_values(self, monkeypatch):
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv(LEGACY_ENV, value)
            assert legacy_protocols_enabled()
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv(LEGACY_ENV, value)
            assert not legacy_protocols_enabled()

    def test_default_is_table_driven(self, monkeypatch):
        monkeypatch.delenv(LEGACY_ENV, raising=False)
        for name in ("so", "cord", "mp", "seq8"):
            port_cls, dir_cls = protocol_classes(name)
            assert port_cls.__name__.startswith("Table")
            assert dir_cls.__name__.startswith("Table")

    def test_env_selects_legacy_actors(self, monkeypatch):
        monkeypatch.setenv(LEGACY_ENV, "1")
        for name in ("so", "cord", "mp", "seq8"):
            port_cls, _ = protocol_classes(name)
            assert not port_cls.__name__.startswith("Table")

    def test_explicit_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(LEGACY_ENV, "1")
        port_cls, _ = protocol_classes("cord", legacy=False)
        assert port_cls.__name__ == "TableCordCorePort"
        monkeypatch.delenv(LEGACY_ENV, raising=False)
        port_cls, _ = protocol_classes("cord", legacy=True)
        assert port_cls.__name__ == "CordCorePort"

    def test_wb_routes_through_spec_actors(self, monkeypatch):
        # wb has a messages-only spec with a declared actor pair: the
        # default path resolves through the spec, not the _STATIC map,
        # but lands on the same classes either way.
        monkeypatch.delenv(LEGACY_ENV, raising=False)
        port_cls, dir_cls = protocol_classes("wb")
        assert port_cls.__name__ == "WbCorePort"
        assert dir_cls.__name__ == "WbDirectory"

    def test_legacy_only_protocols_unaffected_by_toggle(self, monkeypatch):
        monkeypatch.delenv(LEGACY_ENV, raising=False)
        for name in ("wb", "cord-nonotify"):
            port_cls, _ = protocol_classes(name)
            assert not port_cls.__name__.startswith("Table")

    def test_tardis_stays_on_tables_under_legacy_toggle(self, monkeypatch):
        # Table-native: tardis has no legacy actor pair, so the toggle
        # must leave it on the table interpreter instead of failing.
        monkeypatch.setenv(LEGACY_ENV, "1")
        port_cls, dir_cls = protocol_classes("tardis")
        assert port_cls.__name__ == "TableTardisCorePort"
        assert dir_cls.__name__ == "TableTardisDirectory"
