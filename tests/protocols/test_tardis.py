"""Tests for the Tardis timestamp-coherence backend (table-native).

Tardis orders stores with per-core sequence commit plus logical
timestamps instead of invalidation multicast and ack collection, so the
tests here pin the three behaviours that distinguish it from the other
backends: fences are free, reads are served from self-expiring leases,
and release ordering still holds without a single ack message.
"""

import pytest

from repro import Machine, ProgramBuilder
from repro.protocols.spec import TARDIS_LEASE
from tests.protocols.conftest import producer_consumer


class TestOrdering:
    def test_producer_consumer_value_flows(self, two_hosts):
        machine = Machine(two_hosts, protocol="tardis")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_stores_commit_in_program_order(self, two_hosts):
        """Every store rides the per-core seq chain, so the flag can
        never commit before the data it guards."""
        machine = Machine(two_hosts, protocol="tardis")
        programs, data, flag = producer_consumer(machine)
        result = machine.run(programs)
        events = result.history.events
        data_commit = next(e for e in events if e.addr == data and e.is_store)
        flag_commit = next(e for e in events if e.addr == flag and e.is_store)
        assert data_commit.uid < flag_commit.uid

    def test_multi_slice_ordering(self, two_hosts_two_slices):
        """Sequence commit is machine-global: ordering holds even when
        data and flag live on different LLC slices (no notification
        chaining needed, unlike cord)."""
        machine = Machine(two_hosts_two_slices, protocol="tardis")
        amap = machine.address_map
        data = amap.address_in_host(1, 0)      # slice 0 of host 1
        flag = amap.address_in_host(1, 64)     # slice 1 of host 1
        assert amap.home_directory(data) != amap.home_directory(flag)
        producer = (ProgramBuilder()
                    .store(data, value=7, size=64)
                    .release_store(flag, value=1)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 2: consumer})
        assert result.history.register(2, "r0") == 7


class TestNoAcks:
    def test_no_ack_or_notification_traffic(self, two_hosts):
        """Timestamp ordering needs no acks, notifications or flushes."""
        machine = Machine(two_hosts, protocol="tardis")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        for kind in ("rel_ack", "wt_ack", "req_notify", "notify",
                     "seq_flush", "inv", "inv_ack"):
            assert total(kind) == 0, kind

    def test_fence_emits_nothing_and_never_stalls(self, two_hosts):
        machine = Machine(two_hosts, protocol="tardis")
        amap = machine.address_map
        program = (ProgramBuilder()
                   .store(amap.address_in_host(1, 0x1000), size=64)
                   .fence()
                   .build())
        result = machine.run({0: program})
        assert result.stall_ns("fence_ack") == 0
        total = lambda t: (result.message_count(t, "inter_host")
                           + result.message_count(t, "intra_host"))
        assert total("tardis_store") == 1  # just the data store


class TestLeases:
    def _loads(self, two_hosts, count, acquire=False):
        machine = Machine(two_hosts, protocol="tardis")
        amap = machine.address_map
        addr = amap.address_in_host(1, 0x1000)
        builder = ProgramBuilder()
        for i in range(count):
            if acquire:
                builder.acquire_load(addr, register=f"r{i}")
            else:
                builder.load(addr, register=f"r{i}")
        machine.run({0: builder.build()})
        return (machine.stats.value("tardis.lease_hits"),
                machine.stats.value("tardis.lease_misses"))

    def test_relaxed_reloads_hit_the_lease(self, two_hosts):
        hits, misses = self._loads(two_hosts, 2 * TARDIS_LEASE + 4)
        assert hits > 0
        # Each hit self-increments pts (Tardis 2.0), so one lease grant
        # serves at most TARDIS_LEASE hits before expiring.
        assert misses >= 2
        assert hits <= misses * TARDIS_LEASE

    def test_acquire_loads_never_use_the_lease(self, two_hosts):
        hits, misses = self._loads(two_hosts, 6, acquire=True)
        assert hits == 0
        assert misses == 6

    def test_own_store_forwarded_without_lease(self, two_hosts):
        machine = Machine(two_hosts, protocol="tardis")
        amap = machine.address_map
        addr = amap.address_in_host(1, 0x1000)
        program = (ProgramBuilder()
                   .store(addr, value=9)
                   .load(addr, register="r0")
                   .build())
        result = machine.run({0: program})
        assert result.history.register(0, "r0") == 9


class TestWireCost:
    def test_stores_carry_timestamp_metadata(self, two_hosts):
        """Per-store wire bits exceed cord's relaxed store (timestamp
        metadata rides every tardis_store)."""
        def store_bytes(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            amap = machine.address_map
            builder = ProgramBuilder()
            for i in range(16):
                builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
            return machine.run({0: builder.build()}).inter_host_bytes

        assert store_bytes("tardis") > store_bytes("cord")
