"""Tests for the message-passing (MP) protocol actors."""

from repro import Machine, ProgramBuilder
from tests.protocols.conftest import producer_consumer


class TestPostedWrites:
    def test_no_control_traffic_at_all(self, two_hosts):
        machine = Machine(two_hosts, protocol="mp")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.message_count("wt_ack") == 0
        assert result.message_count("rel_ack") == 0

    def test_value_flows_point_to_point(self, two_hosts):
        machine = Machine(two_hosts, protocol="mp")
        programs, _, _ = producer_consumer(machine)
        result = machine.run(programs)
        assert result.history.register(1, "r0") == 42

    def test_producer_never_stalls(self, two_hosts):
        machine = Machine(two_hosts, protocol="mp")
        amap = machine.address_map
        builder = ProgramBuilder()
        for i in range(5):
            builder.store(amap.address_in_host(1, 0x1000 + 64 * i))
            builder.release_store(amap.address_in_host(1, 0x3000 + 64 * i))
        result = machine.run({0: builder.build()})
        assert result.stall_ns() == 0

    def test_mp_is_traffic_lower_bound(self, two_hosts):
        def traffic(protocol):
            machine = Machine(two_hosts, protocol=protocol)
            programs, _, _ = producer_consumer(machine)
            return machine.run(programs).inter_host_bytes

        mp = traffic("mp")
        assert mp <= traffic("cord")
        assert mp <= traffic("so")

    def test_same_pair_fifo_preserves_point_to_point_order(self, two_hosts):
        """Per-pair FIFO: a later small posted write does not pass an
        earlier large one on the same path."""
        machine = Machine(two_hosts, protocol="mp")
        amap = machine.address_map
        data = amap.address_in_host(1, 0x1000)
        flag = amap.address_in_host(1, 0x2000)
        producer = (ProgramBuilder()
                    .store(data, value=9, size=4096)
                    .store(flag, value=1, size=8)
                    .build())
        consumer = (ProgramBuilder()
                    .load_until(flag, 1)
                    .load(data, register="r0")
                    .build())
        result = machine.run({0: producer, 1: consumer})
        assert result.history.register(1, "r0") == 9
