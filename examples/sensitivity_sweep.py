#!/usr/bin/env python3
"""Sensitivity analysis (Fig. 8/9/10 condensed): when does CORD win?

Sweeps the §5.3 micro-benchmark along one axis at a time — Relaxed store
granularity, synchronization granularity, communication fan-out, and
interconnect latency — and prints SO/MP relative to CORD, plus the
bit-width study against the SEQ baselines.

Run:  python examples/sensitivity_sweep.py
"""

from repro.config import CXL
from repro.harness import (
    fig8_sensitivity,
    fig9_latency_sweep,
    fig10_bitwidth,
    format_table,
)


def main():
    for parameter, caption in (
        ("store", "Relaxed store granularity (B)"),
        ("sync", "Synchronization granularity (B)"),
        ("fanout", "Communication fan-out (# hosts)"),
    ):
        rows = fig8_sensitivity(parameter, interconnects=(CXL,))
        print(f"\n=== {caption} — time/traffic normalized to CORD ===")
        print(format_table(rows))

    print("\n=== Inter-PU latency sweep — SO normalized to CORD ===")
    rows = fig9_latency_sweep(parameter="store", values=(64,))
    print(format_table(rows))

    print("\n=== Epoch/store-counter bit-widths vs SEQ-8 / SEQ-40 ===")
    rows = fig10_bitwidth(interconnects=(CXL,))
    print(format_table(
        rows,
        columns=["sweep", "bits", "cord_time_vs_seq40",
                 "cord_traffic_vs_seq8"],
    ))

    print("\nTakeaways (matching §5.3):")
    print(" * CORD's edge over SO grows with store granularity and shrinks")
    print("   with synchronization granularity and fan-out;")
    print(" * CORD equals MP whenever fan-out is 1 (no notifications);")
    print(" * decoupled epochs+counters match SEQ-40's speed at SEQ-8's")
    print("   traffic — the trade-off of §4.1, broken.")


if __name__ == "__main__":
    main()
