#!/usr/bin/env python3
"""Trace-driven evaluation: record once, replay everywhere.

The paper evaluates the DOE mini-apps from traces (§5.1).  This example
shows the same workflow end-to-end: build the MOCFE mini-app through the
MPI port, serialize its per-core operation streams to a trace file, then
replay the identical trace under every protocol — guaranteeing all
protocols see byte-for-byte the same workload.

Run:  python examples/trace_replay.py [trace-path]
"""

import sys
import tempfile
from pathlib import Path

from repro import Machine, SystemConfig
from repro.workloads import build_doe_programs
from repro.workloads.trace import dump_trace, load_trace


def main():
    config = SystemConfig().scaled(hosts=4, cores_per_host=1)

    # 1. Record: synthesize MOCFE through the MPI port and save the trace.
    programs = build_doe_programs("MOCFE", config)
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
    else:
        trace_path = Path(tempfile.gettempdir()) / "mocfe.trace"
    dump_trace(programs, trace_path)
    ops = sum(len(p) for p in programs.values())
    print(f"recorded MOCFE: {len(programs)} ranks, {ops} ops "
          f"-> {trace_path} ({trace_path.stat().st_size} bytes)\n")

    # 2. Replay the identical trace under each protocol.
    print(f"{'protocol':8s} {'time (us)':>10s} {'traffic (KB)':>13s}")
    results = {}
    for protocol in ("mp", "cord", "so"):
        replayed = load_trace(trace_path)
        machine = Machine(config, protocol=protocol)
        result = machine.run(replayed)
        results[protocol] = result
        print(f"{protocol:8s} {result.time_ns / 1000:10.1f} "
              f"{result.inter_host_bytes / 1024:13.1f}")

    so, cord = results["so"], results["cord"]
    print(f"\nsame trace, different protocols: CORD finishes "
          f"{so.time_ns / cord.time_ns:.2f}x sooner than source ordering "
          f"and moves {so.inter_host_bytes / cord.inter_host_bytes:.2f}x "
          f"fewer bytes.")
    print("(edit the trace file by hand and re-run — the format is plain "
          "text, one op per line)")


if __name__ == "__main__":
    main()
