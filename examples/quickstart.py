#!/usr/bin/env python3
"""Quickstart: producer-consumer over CORD vs the baselines.

Builds a two-host CXL system, runs the canonical write-through
producer-consumer exchange (bulk Relaxed stores, one Release flag, a polling
consumer) under every protocol, and prints time/traffic side by side —
the Fig. 1 intuition in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import Machine, ProgramBuilder, SystemConfig


def build_programs(machine, payload_bytes=4096, store_bytes=64):
    """One producer on host 0 streaming a buffer + flag to host 1."""
    amap = machine.address_map
    flag = amap.address_in_host(1, 0x4000)
    base = amap.address_in_host(1, 0x100000)

    producer = ProgramBuilder("producer")
    for offset in range(0, payload_bytes, store_bytes):
        producer.store(base + offset, value=offset + 1, size=store_bytes)
    producer.release_store(flag, value=1)

    consumer = (ProgramBuilder("consumer")
                .load_until(flag, 1)                 # acquire-poll the flag
                .load(base, register="first")        # then read the payload
                .load(base + payload_bytes - store_bytes, register="last")
                .build())
    return {0: producer.build(), 1: consumer}


def main():
    config = SystemConfig().scaled(hosts=2, cores_per_host=1)
    print(f"system: 2 hosts over {config.interconnect.name} "
          f"({config.interconnect.inter_host_latency_ns:.0f} ns links)\n")
    print(f"{'protocol':10s} {'time (ns)':>12s} {'traffic (B)':>12s} "
          f"{'ctrl (B)':>10s}  consumer saw")
    results = {}
    for protocol in ("mp", "cord", "so", "wb", "seq8"):
        machine = Machine(config, protocol=protocol)
        result = machine.run(build_programs(machine))
        results[protocol] = result
        first = result.history.register(1, "first")
        last = result.history.register(1, "last")
        print(f"{protocol:10s} {result.time_ns:12.1f} "
              f"{result.inter_host_bytes:12.0f} "
              f"{result.inter_host_control_bytes:10.0f}  "
              f"first={first} last={last}")

    cord, so = results["cord"], results["so"]
    print(f"\nCORD vs SO: {so.time_ns / cord.time_ns:.2f}x faster, "
          f"{so.inter_host_bytes / cord.inter_host_bytes:.2f}x less traffic "
          f"(SO sent {so.message_count('wt_ack'):.0f} acknowledgments; "
          f"CORD sent none for Relaxed stores)")


if __name__ == "__main__":
    main()
