#!/usr/bin/env python3
"""Model-checking the ISA2 litmus variant (Fig. 3, §3.2).

Exhaustively explores every interleaving of the three-thread ISA2 pattern
under CORD, source ordering and message passing.  CORD and SO forbid the
outcome release consistency forbids; MP — whose ordering is only
point-to-point — reaches it, exactly the violation that made TQH unrunnable
under message passing in the paper.

Run:  python examples/litmus_isa2.py
"""

from repro.litmus import LitmusTest, ModelChecker, ld, poll_acq, st, st_rel

ISA2 = LitmusTest(
    name="ISA2",
    # X and Z live on T2's host, Y on T1's host — the Fig. 3 placement.
    locations={"X": 2, "Y": 1, "Z": 2},
    programs=[
        [st("X", 1), st_rel("Y", 1)],               # T0
        [poll_acq("Y", 1, "r1"), st_rel("Z", 1)],   # T1
        [poll_acq("Z", 1, "r2"), ld("X", "r3")],    # T2
    ],
    forbidden=[{"P2:r2": 1, "P2:r3": 0}],  # r3 = 0 breaks cumulativity
)


def main():
    print("ISA2 variant (Fig. 3): T0 -> T1 -> T2 chained release/acquire;")
    print("release consistency forbids T2 reading X = 0 after the chain.\n")

    for protocol in ("cord", "so", "mp"):
        result = ModelChecker(ISA2, protocol=protocol).run()
        print(f"--- {protocol.upper()} ---")
        print(f"  states explored : {result.states_explored}")
        print(f"  final outcomes  : {len(result.finals)}")
        for final in result.finals:
            registers = {k: v for k, v in final.outcome.items()
                         if k.startswith("P")}
            marker = ""
            if ISA2.matches_forbidden(final.outcome):
                marker = "   <-- FORBIDDEN under RC"
            print(f"    {registers}{marker}")
        print(f"  deadlocks       : {result.deadlocks}")
        print(f"  axiomatic RC    : "
              f"{'violated' if result.rc_violations else 'satisfied'}")
        verdict = "PASS (RC preserved)" if result.passed else \
            "FAIL (RC violated)"
        print(f"  verdict         : {verdict}\n")

    print("Conclusion: directory ordering (and source ordering) enforce")
    print("system-wide release consistency; point-to-point message passing")
    print("does not — programmers must orchestrate ordering by hand (§3.2).")


if __name__ == "__main__":
    main()
