#!/usr/bin/env python3
"""End-to-end workload comparison (the Fig. 7 experiment, condensed).

Runs the Table 2 application suite — Pannotia graph analytics, Chai
collaborative kernels, and DOE MPI mini-apps — under MP, CORD, SO and WB on
a 4-host CXL system, printing normalized time and traffic per application
plus suite averages.

Run:  python examples/doe_workloads.py [app ...]
"""

import sys

from repro import Machine, SystemConfig
from repro.harness.report import geometric_mean
from repro.workloads import APPLICATIONS, app_names, build_workload_programs

PROTOCOLS = ("mp", "cord", "so", "wb")


def run_application(name, config):
    spec = APPLICATIONS[name]
    measurements = {}
    for protocol in PROTOCOLS:
        machine = Machine(config, protocol=protocol)
        result = machine.run(build_workload_programs(spec, config))
        measurements[protocol] = (result.time_ns, result.inter_host_bytes)
    return measurements


def main():
    apps = sys.argv[1:] or app_names()
    config = SystemConfig().scaled(hosts=4, cores_per_host=2)
    print(f"4-host {config.interconnect.name} system; values normalized "
          f"to CORD (time, traffic)\n")
    print(f"{'app':8s}" + "".join(f"{p:>16s}" for p in PROTOCOLS))

    ratios = {p: {"time": [], "traffic": []} for p in PROTOCOLS}
    for name in apps:
        measurements = run_application(name, config)
        cord_time, cord_traffic = measurements["cord"]
        cells = []
        for protocol in PROTOCOLS:
            time_ns, traffic = measurements[protocol]
            t, b = time_ns / cord_time, traffic / cord_traffic
            ratios[protocol]["time"].append(t)
            ratios[protocol]["traffic"].append(b)
            cells.append(f"{t:6.2f}, {b:5.2f}")
        print(f"{name:8s}" + "".join(f"{c:>16s}" for c in cells))

    print("\nsuite geometric means (vs CORD):")
    for protocol in PROTOCOLS:
        t = geometric_mean(ratios[protocol]["time"])
        b = geometric_mean(ratios[protocol]["traffic"])
        print(f"  {protocol:5s} time {t:5.2f}x   traffic {b:5.2f}x")

    so_time = geometric_mean(ratios["so"]["time"])
    mp_time = geometric_mean(ratios["mp"]["time"])
    print(f"\nCORD is {100 * (so_time - 1):.0f}% faster than source "
          f"ordering and within {100 * (1 - mp_time):.0f}% of "
          f"hand-optimized message passing — with a single system-wide "
          f"release-consistency programming model.")


if __name__ == "__main__":
    main()
