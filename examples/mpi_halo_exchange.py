#!/usr/bin/env python3
"""MPI-over-shared-memory: a halo-exchange stencil (the DOE mini-app port).

The paper evaluates the DOE scientific mini-apps by porting their MPI
primitives to release-consistent write-through stores (§5.1).  This example
uses that port directly: a 1-D stencil where every rank computes, exchanges
halos with both neighbours, and hits a global barrier each timestep — then
compares CORD against source ordering and message passing.

Run:  python examples/mpi_halo_exchange.py
"""

from repro import Machine, SystemConfig
from repro.workloads import MpiWorld

RANKS = 4
TIMESTEPS = 6
HALO_BYTES = 4 * 1024
COMPUTE_NS = 1500.0


def build_world(config):
    world = MpiWorld(config, ranks=RANKS)
    for _ in range(TIMESTEPS):
        for rank in range(RANKS):
            world.compute(rank, COMPUTE_NS)
        # Exchange halos with both neighbours (periodic boundary).
        for rank in range(RANKS):
            world.send(rank, (rank + 1) % RANKS, HALO_BYTES)
            world.send(rank, (rank - 1) % RANKS, HALO_BYTES)
        for rank in range(RANKS):
            world.recv(rank, (rank + 1) % RANKS)
            world.recv(rank, (rank - 1) % RANKS)
        world.barrier()
    return world.build()


def main():
    config = SystemConfig().scaled(hosts=RANKS, cores_per_host=1)
    print(f"{RANKS}-rank halo exchange, {TIMESTEPS} timesteps, "
          f"{HALO_BYTES} B halos over {config.interconnect.name}\n")
    print(f"{'protocol':8s} {'time (us)':>10s} {'traffic (KB)':>13s} "
          f"{'ctrl msgs':>10s}")
    baseline = None
    for protocol in ("mp", "cord", "so"):
        machine = Machine(config, protocol=protocol)
        result = machine.run(build_world(config))
        control = result.stats.value("msgs.inter_host.ctrl_count")
        print(f"{protocol:8s} {result.time_ns / 1000:10.1f} "
              f"{result.inter_host_bytes / 1024:13.1f} {control:10.0f}")
        if protocol == "cord":
            baseline = result
    so = Machine(config, protocol="so").run(build_world(config))
    print(f"\nCORD completes the exchange "
          f"{so.time_ns / baseline.time_ns:.2f}x faster than source "
          f"ordering — the per-halo acknowledgment round-trips are gone, "
          f"and the barrier's fetch-add is directory-ordered too.")


if __name__ == "__main__":
    main()
