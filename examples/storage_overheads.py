#!/usr/bin/env python3
"""Storage, area and power overheads (Fig. 11/12 + Table 3 condensed).

Runs the storage-hungriest workloads (SSSP, PAD, PR and the synthetic ATA
all-to-all) under CORD and reports the peak look-up table occupancy at the
processors and directories, plus the CACTI-style area/power estimate of the
provisioned tables.

Run:  python examples/storage_overheads.py
"""

from repro.config import CXL, SystemConfig
from repro.harness import (
    fig11_storage,
    fig12_storage_breakdown,
    format_table,
    table3_area_power,
)


def main():
    print("=== Fig. 11: peak storage vs number of PUs (CORD) ===")
    rows = fig11_storage(host_counts=(2, 4, 8), interconnects=(CXL,))
    print(format_table(rows))
    worst = max(rows, key=lambda r: r["dir_storage_B"])
    llc = SystemConfig().llc_slice.size_bytes
    print(f"\nworst directory storage: {worst['dir_storage_B']} B "
          f"({worst['workload']} @ {worst['hosts']} hosts) — "
          f"{llc // max(worst['dir_storage_B'], 1):,}x smaller than one "
          f"2 MB LLC slice")

    print("\n=== Fig. 12: ATA storage breakdown ===")
    print(format_table(fig12_storage_breakdown(interconnects=(CXL,))))

    print("\n=== Table 3: provisioned tables — area / power / energy ===")
    print(format_table(table3_area_power()))
    print("\n(the summary row gives CORD's directory-side area, power and")
    print(" dynamic-energy ratios vs a host's LLC slices — all below the")
    print(" paper's <0.2%, <1.3% and <1% bounds)")


if __name__ == "__main__":
    main()
